// One-call run harness: builds the trusted setup, the processes and the
// executor for a protocol, runs the full round schedule against an
// adversary, and collects decisions, stats and the word meter. Used by
// tests, benches and examples alike.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ba/baseline/baselines.hpp"
#include "ba/bb/bb.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/weak_ba/weak_ba.hpp"
#include "sim/executor.hpp"

namespace mewc::harness {

struct RunSpec {
  std::uint32_t n = 0;
  std::uint32_t t = 0;
  std::uint64_t instance = 1;
  ThresholdBackend backend = ThresholdBackend::kSim;
  std::uint64_t seed = 0x5e7u;
  /// Re-encode and re-parse every message through the byte-level wire
  /// codec (src/wire): proves the run does not depend on in-memory payload
  /// sharing. Off by default (it costs time, not behaviour).
  bool codec_roundtrip = false;
  /// Optional observer of every link-crossing message (trace tooling).
  std::function<void(const Message&, bool correct)> recorder;
  /// Optional hook invoked once the trusted setup exists, before round 1.
  /// Gives observers access to the run's ThresholdFamily while the run is
  /// live — the src/check certificate scanner verifies every certificate
  /// crossing the wire against the real schemes through this.
  std::function<void(const ThresholdFamily&)> on_setup;

  [[nodiscard]] static RunSpec for_t(std::uint32_t t) {
    RunSpec s;
    s.t = t;
    s.n = n_for_t(t);
    return s;
  }

  /// General resilience n >= 2t+1 (paper Section 8: the protocols carry
  /// over; a larger gap widens the adaptive regime).
  [[nodiscard]] static RunSpec with(std::uint32_t n, std::uint32_t t) {
    MEWC_CHECK(n >= 2 * t + 1);
    RunSpec s;
    s.t = t;
    s.n = n;
    return s;
  }
};

/// Fields common to every protocol run.
struct RunOutcome {
  /// Copied from the executor at run end; breakdowns grow on demand, so a
  /// default-constructed meter never silently drops attribution.
  Meter meter;
  std::vector<ProcessId> corrupted;
  std::uint64_t signatures_issued = 0;
  Round rounds = 0;

  [[nodiscard]] std::uint32_t f() const {
    return static_cast<std::uint32_t>(corrupted.size());
  }
  [[nodiscard]] bool is_corrupted(ProcessId p) const;
};

struct BbResult : RunOutcome {
  ProcessId sender = kNoProcess;
  std::vector<std::optional<bb::BbStats>> stats;  // nullopt for corrupted

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
  /// The common decision (meaningful when agreement() holds).
  [[nodiscard]] Value decision() const;
  [[nodiscard]] std::uint32_t nonsilent_leaders() const;
  [[nodiscard]] bool any_fallback() const;
};

struct WbaResult : RunOutcome {
  std::vector<std::optional<wba::WbaStats>> stats;

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] WireValue decision() const;
  [[nodiscard]] std::uint32_t nonsilent_leaders() const;
  [[nodiscard]] bool any_fallback() const;
  [[nodiscard]] std::uint32_t help_reqs_sent() const;
};

struct SbaResult : RunOutcome {
  std::vector<std::optional<sba::SbaStats>> stats;

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] Value decision() const;
  [[nodiscard]] bool any_fallback() const;
  [[nodiscard]] bool all_fast() const;
};

struct FallbackResult : RunOutcome {
  std::vector<std::optional<WireValue>> decisions;

  [[nodiscard]] bool agreement() const;
  [[nodiscard]] WireValue decision() const;
};

struct DsBbResult : RunOutcome {
  std::vector<std::optional<Value>> decisions;

  [[nodiscard]] bool agreement() const;
  [[nodiscard]] Value decision() const;
};

struct IcResult : RunOutcome {
  std::vector<std::optional<std::vector<Value>>> vectors;  // per process

  [[nodiscard]] bool all_decided() const;
  /// All correct processes hold the same vector.
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] std::vector<Value> vector() const;
};

/// Builds the predicate for a weak BA run once the trusted setup exists.
using PredicateFactory = std::function<std::shared_ptr<const ValidityPredicate>(
    const ThresholdFamily&, std::uint64_t instance)>;

[[nodiscard]] PredicateFactory always_valid_factory();

/// Byzantine Broadcast (Algorithms 1 + 2 over weak BA).
[[nodiscard]] BbResult run_bb(const RunSpec& spec, ProcessId sender,
                              Value sender_input, Adversary& adversary);

/// Adaptive weak BA (Algorithms 3 + 4). inputs[i] is process i's proposal.
[[nodiscard]] WbaResult run_weak_ba(const RunSpec& spec,
                                    const std::vector<WireValue>& inputs,
                                    const PredicateFactory& predicate,
                                    Adversary& adversary);

/// Strong binary BA (Algorithm 5).
[[nodiscard]] SbaResult run_strong_ba(const RunSpec& spec,
                                      const std::vector<Value>& inputs,
                                      Adversary& adversary);

/// A_fallback run standalone as a strong BA.
[[nodiscard]] FallbackResult run_fallback_ba(
    const RunSpec& spec, const std::vector<WireValue>& inputs,
    Adversary& adversary);

/// Classic single-sender Dolev-Strong BB (baseline).
[[nodiscard]] DsBbResult run_ds_bb(const RunSpec& spec, ProcessId sender,
                                   Value sender_input, Adversary& adversary);

/// Interactive consistency: n parallel BB lanes (src/ba/vector). inputs[i]
/// is process i's proposal.
[[nodiscard]] IcResult run_ic(const RunSpec& spec,
                              const std::vector<Value>& inputs,
                              Adversary& adversary);

}  // namespace mewc::harness
