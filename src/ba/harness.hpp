// One-call run harness: builds (or fetches from a SetupCache) the trusted
// setup, the processes and the executor for a protocol, runs the full round
// schedule against an adversary, and collects decisions, stats and the word
// meter. Used by tests, benches, tools and the SMR engine alike.
//
// Two API layers live here:
//
//  * ProtocolDriver — the uniform entry point. One polymorphic driver per
//    protocol (name-keyed registry), one RunInputs shape in, one RunReport
//    shape out. All dispatch in tools/ and src/check/ goes through this.
//  * run_bb / run_weak_ba / ... — the original per-protocol entry points
//    with their per-protocol result structs. DEPRECATED: these remain as
//    thin adapters for one release (the drivers are implemented on top of
//    them, so behaviour is bit-identical); new code should resolve a
//    driver via harness::find_driver / harness::drivers instead.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ba/baseline/baselines.hpp"
#include "ba/bb/bb.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/weak_ba/weak_ba.hpp"
#include "sim/executor.hpp"

namespace mewc::harness {

/// Caches ThresholdFamily setups by (n, t, backend, seed) so threshold key
/// generation is amortized across many runs — the SMR engine's workers run
/// thousands of instances against a handful of system shapes. All key
/// material is derived deterministically from the seed, so a cached family
/// produces transcripts bit-identical to a fresh one; the harness resets
/// the PKI signature counters at run start so per-run signature counts are
/// identical too.
///
/// NOT thread-safe: one cache per worker thread (the Pki mutates signature
/// counters on every sign), never shared across concurrent runs.
class SetupCache {
 public:
  /// The cached family for this shape, constructing it on first use.
  [[nodiscard]] ThresholdFamily& family(std::uint32_t n, std::uint32_t t,
                                        ThresholdBackend backend,
                                        std::uint64_t seed);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return families_.size(); }

  /// Crypto verification work summed over every cached family: pairings
  /// actually evaluated and verification-memo hits avoided (kReal; all
  /// zeros under the ideal backends). The memo lives with the family, so a
  /// cache that spans many runs amortizes verified-cert digests across
  /// phases and instances — this is where that amortization is observable.
  [[nodiscard]] CryptoVerifyStats crypto_verify_stats() const;

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, int, std::uint64_t>;
  std::map<Key, std::unique_ptr<ThresholdFamily>> families_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

struct RunSpec {
  std::uint32_t n = 0;
  std::uint32_t t = 0;
  std::uint64_t instance = 1;
  ThresholdBackend backend = ThresholdBackend::kSim;
  std::uint64_t seed = 0x5e7u;
  /// Re-encode and re-parse every message through the byte-level wire
  /// codec (src/wire): proves the run does not depend on in-memory payload
  /// sharing. Off by default (it costs time, not behaviour).
  bool codec_roundtrip = false;
  /// Which IExecutor implementation drives the run (DESIGN.md §14). Both
  /// kinds produce bit-identical transcripts, meters and decisions — the
  /// DST smoke grid pins this — so the choice costs time, not behaviour.
  ExecutorKind executor = ExecutorKind::kLockstep;
  /// Reuse the trusted setup from this cache instead of regenerating it
  /// (see SetupCache). Borrowed, may be nullptr; the caller keeps the cache
  /// alive for the duration of the run.
  SetupCache* setup_cache = nullptr;
  /// Optional observer of every link-crossing message (trace tooling).
  std::function<void(const Message&, bool correct)> recorder;
  /// Optional hook invoked once the trusted setup exists, before round 1.
  /// Gives observers access to the run's ThresholdFamily while the run is
  /// live — the src/check certificate scanner verifies every certificate
  /// crossing the wire against the real schemes through this.
  std::function<void(const ThresholdFamily&)> on_setup;
  /// Optional hook invoked after the last round, while the family is still
  /// alive — the last chance to verify anything buffered during the run
  /// (the certificate scanner drains its kReal batch-verify queue here).
  std::function<void(const ThresholdFamily&)> on_teardown;

  /// The single checked constructor both factories route through: every
  /// RunSpec in the codebase satisfies n >= 2t+1 (paper Section 8; a larger
  /// gap widens the adaptive regime).
  [[nodiscard]] static RunSpec checked(std::uint32_t n, std::uint32_t t);

  [[nodiscard]] static RunSpec for_t(std::uint32_t t) {
    return checked(n_for_t(t), t);
  }

  [[nodiscard]] static RunSpec with(std::uint32_t n, std::uint32_t t) {
    return checked(n, t);
  }

  /// Canonical one-line description ("n=9 t=4 seed=1455", plus backend /
  /// roundtrip markers when non-default) — the shared vocabulary for
  /// campaign cell labels and bench JSON labels.
  [[nodiscard]] std::string describe() const;
};

/// Fields common to every protocol run.
struct RunOutcome {
  /// Copied from the executor at run end; breakdowns grow on demand, so a
  /// default-constructed meter never silently drops attribution.
  Meter meter;
  std::vector<ProcessId> corrupted;
  std::uint64_t signatures_issued = 0;
  Round rounds = 0;

  [[nodiscard]] std::uint32_t f() const {
    return static_cast<std::uint32_t>(corrupted.size());
  }
  [[nodiscard]] bool is_corrupted(ProcessId p) const;
};

// ---------------------------------------------------------------------------
// Unified driver API
// ---------------------------------------------------------------------------

/// Builds the predicate for a weak BA run once the trusted setup exists.
using PredicateFactory = std::function<std::shared_ptr<const ValidityPredicate>(
    const ThresholdFamily&, std::uint64_t instance)>;

[[nodiscard]] PredicateFactory always_valid_factory();

/// Uniform inputs for any protocol. `values[i]` is process i's proposal;
/// single-sender protocols (BB, ds-BB) read only `values[sender]`. The
/// predicate factory applies to external-validity protocols (weak BA) and
/// defaults to always-valid when unset.
struct RunInputs {
  std::vector<WireValue> values;
  ProcessId sender = kNoProcess;
  PredicateFactory predicate;
};

/// Uniform outcome of any protocol run: the shared RunOutcome fields plus
/// per-process decisions and the cross-protocol observables. Subsumes
/// BbResult / WbaResult / SbaResult / FallbackResult / DsBbResult /
/// IcResult; fields a protocol does not produce keep their defaults.
struct RunReport : RunOutcome {
  std::string protocol;           // driver name
  ProcessId sender = kNoProcess;  // designated sender (single-sender only)
  std::vector<bool> decided;      // per process; false for corrupted
  std::vector<WireValue> decisions;  // bottom where !decided
  /// Vector-consensus lane (interactive consistency): per-process agreed
  /// vectors. Empty for scalar protocols.
  std::vector<std::optional<std::vector<Value>>> vectors;
  bool any_fallback = false;
  bool all_fast = true;               // strong BA: everyone decided fast
  std::uint32_t nonsilent_leaders = 0;  // rotating-phase protocols
  std::uint32_t help_reqs = 0;          // weak BA help requests sent

  /// Every correct process decided (vector protocols: holds a vector).
  [[nodiscard]] bool all_decided() const;
  /// All correct decisions (and vectors) agree.
  [[nodiscard]] bool agreement() const;
  /// The common decision; bottom when nobody decided.
  [[nodiscard]] WireValue decision() const;
  /// The common vector (vector protocols; empty otherwise).
  [[nodiscard]] std::vector<Value> vector() const;
};

/// Static shape of a protocol, consumed by input derivation and the
/// phase-geometry-aware adversaries. Mirrors what used to live in the
/// per-protocol switch statements of src/check/protocols.cpp.
struct DriverTraits {
  /// One designated sender proposes; everyone else's input is ignored.
  bool single_sender = false;
  /// Inputs must be binary {0, 1} (strong BA, Algorithm 5).
  bool binary_values = false;
  /// Decisions are per-process vectors, not scalars (IC).
  bool vector_output = false;
  /// Rotating-leader phase structure, for the leader-killer adversary: the
  /// round the first phase starts in and the phase length. (1, 1) for
  /// protocols without rotating phases.
  Round phase_first = 1;
  Round phase_len = 1;
};

/// A protocol behind the uniform prepare/run/outcome surface. Stateless;
/// one registered instance per protocol.
class ProtocolDriver {
 public:
  virtual ~ProtocolDriver() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual DriverTraits traits() const = 0;

  /// Total rounds of the protocol's static schedule.
  [[nodiscard]] virtual Round total_rounds(std::uint32_t n,
                                           std::uint32_t t) const = 0;

  /// Global round of the help exchange (0 when the protocol has none).
  [[nodiscard]] virtual Round help_round(std::uint32_t n) const {
    (void)n;
    return 0;
  }

  /// Validates and normalizes inputs for this protocol (sizes them to n,
  /// clamps binary-value protocols). The default fills missing values with
  /// `base` and clamps when traits().binary_values.
  [[nodiscard]] std::vector<WireValue> prepare(std::uint32_t n,
                                               Value base) const;

  /// Runs one instance and returns the uniform report.
  [[nodiscard]] virtual RunReport run(const RunSpec& spec,
                                      const RunInputs& inputs,
                                      Adversary& adversary) const = 0;
};

/// The registered driver with this name, or nullptr. Names: "bb",
/// "weak-ba", "strong-ba", "fallback", "ds-bb", "ic".
[[nodiscard]] const ProtocolDriver* find_driver(std::string_view name);

/// All registered drivers, in registration order.
[[nodiscard]] const std::vector<const ProtocolDriver*>& drivers();

// ---------------------------------------------------------------------------
// Per-protocol adapters (DEPRECATED)
//
// The structs and run_* functions below predate the driver API. They are
// kept as thin adapters for one release so existing callers keep compiling;
// new code should go through find_driver()/drivers() and RunReport. The
// drivers produce their RunReports from these, so both layers stay
// bit-identical by construction.
// ---------------------------------------------------------------------------

struct BbResult : RunOutcome {
  ProcessId sender = kNoProcess;
  std::vector<std::optional<bb::BbStats>> stats;  // nullopt for corrupted

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
  /// The common decision (meaningful when agreement() holds).
  [[nodiscard]] Value decision() const;
  [[nodiscard]] std::uint32_t nonsilent_leaders() const;
  [[nodiscard]] bool any_fallback() const;
};

struct WbaResult : RunOutcome {
  std::vector<std::optional<wba::WbaStats>> stats;

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] WireValue decision() const;
  [[nodiscard]] std::uint32_t nonsilent_leaders() const;
  [[nodiscard]] bool any_fallback() const;
  [[nodiscard]] std::uint32_t help_reqs_sent() const;
};

struct SbaResult : RunOutcome {
  std::vector<std::optional<sba::SbaStats>> stats;

  [[nodiscard]] bool all_decided() const;
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] Value decision() const;
  [[nodiscard]] bool any_fallback() const;
  [[nodiscard]] bool all_fast() const;
};

struct FallbackResult : RunOutcome {
  std::vector<std::optional<WireValue>> decisions;

  [[nodiscard]] bool agreement() const;
  [[nodiscard]] WireValue decision() const;
};

struct DsBbResult : RunOutcome {
  std::vector<std::optional<Value>> decisions;

  [[nodiscard]] bool agreement() const;
  [[nodiscard]] Value decision() const;
};

struct IcResult : RunOutcome {
  std::vector<std::optional<std::vector<Value>>> vectors;  // per process

  [[nodiscard]] bool all_decided() const;
  /// All correct processes hold the same vector.
  [[nodiscard]] bool agreement() const;
  [[nodiscard]] std::vector<Value> vector() const;
};

/// Byzantine Broadcast (Algorithms 1 + 2 over weak BA).
[[nodiscard]] BbResult run_bb(const RunSpec& spec, ProcessId sender,
                              Value sender_input, Adversary& adversary);

/// Adaptive weak BA (Algorithms 3 + 4). inputs[i] is process i's proposal.
[[nodiscard]] WbaResult run_weak_ba(const RunSpec& spec,
                                    const std::vector<WireValue>& inputs,
                                    const PredicateFactory& predicate,
                                    Adversary& adversary);

/// Strong binary BA (Algorithm 5).
[[nodiscard]] SbaResult run_strong_ba(const RunSpec& spec,
                                      const std::vector<Value>& inputs,
                                      Adversary& adversary);

/// A_fallback run standalone as a strong BA.
[[nodiscard]] FallbackResult run_fallback_ba(
    const RunSpec& spec, const std::vector<WireValue>& inputs,
    Adversary& adversary);

/// Classic single-sender Dolev-Strong BB (baseline).
[[nodiscard]] DsBbResult run_ds_bb(const RunSpec& spec, ProcessId sender,
                                   Value sender_input, Adversary& adversary);

/// Interactive consistency: n parallel BB lanes (src/ba/vector). inputs[i]
/// is process i's proposal.
[[nodiscard]] IcResult run_ic(const RunSpec& spec,
                              const std::vector<Value>& inputs,
                              Adversary& adversary);

}  // namespace mewc::harness
