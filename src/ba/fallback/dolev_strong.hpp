// A_fallback: a deterministic synchronous strong BA for n = 2t + 1.
//
// The paper plugs in Momose-Ren (DISC 2021, O(n^2) words) as a black box.
// Per DESIGN.md SUB-1, we substitute a provably correct classic: every
// process broadcasts its input through an authenticated Dolev-Strong
// instance (t+1 rounds; signature chains compressed into one aggregate tag
// plus a signer bitmap), after which all correct processes hold identical
// output vectors and apply a deterministic raw-value majority.
//
//   * Agreement: Dolev-Strong gives every correct process the same per-slot
//     extraction, hence the same vector, hence the same majority.
//   * Strong unanimity: if all correct processes input value v, the >= t+1
//     slots of correct senders all extract v, and no other raw value can
//     reach t+1 slots, so the majority is v.
//   * Termination: fixed t+2 round schedule.
//
// Word cost is O(n^3) worst case (each correct process relays at most two
// values per instance); the bench harness also reports the modeled O(n^2)
// cost of a Momose-Ren execution for shape comparison (cost_model.hpp).
#pragma once

#include <vector>

#include "ba/context.hpp"
#include "ba/value.hpp"
#include "net/message.hpp"
#include "net/outbox.hpp"
#include "net/payload.hpp"
#include "crypto/multisig.hpp"

namespace mewc::fallback {

/// Relay message of instance `instance` carrying `value` with an aggregated
/// signature chain. The chain must contain the instance owner and at least
/// r distinct signers to be accepted in local round r.
struct DsRelayMsg final : public Payload {
  ProcessId instance = kNoProcess;
  WireValue value;
  AggSignature chain;

  [[nodiscard]] std::size_t words() const override {
    return value.words() + chain.words();
  }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures() + chain.signers.count();
  }
  [[nodiscard]] const char* kind() const override { return "ds.relay"; }
};

/// Deterministic total order on WireValue used for tie-breaking; any fixed
/// order preserves agreement because all correct processes order identical
/// candidate sets.
[[nodiscard]] bool wire_value_less(const WireValue& a, const WireValue& b);

/// Digest every chain signature covers: run instance, the broadcasting
/// instance's identity, and the full value content.
[[nodiscard]] Digest ds_relay_digest(std::uint64_t run_instance,
                                     ProcessId ds_instance,
                                     const WireValue& v);

class DolevStrongEngine {
 public:
  explicit DolevStrongEngine(const ProtocolContext& ctx);

  /// Number of local rounds the engine needs: the classic t+1 (messages
  /// sent in a round are delivered within it, so no landing round is
  /// needed; decide() is meaningful after on_receive(t+1)).
  [[nodiscard]] static Round rounds(std::uint32_t t) { return t + 1; }

  /// Sets this process's fallback input (the paper's bu_decision).
  void set_input(const WireValue& v) { input_ = v; }

  /// Marks this process as a fallback participant. Inactive engines send
  /// nothing and ignore traffic (their holder decided without the fallback).
  void activate() { active_ = true; }
  [[nodiscard]] bool active() const { return active_; }

  /// When false, this process relays but never starts its own instance.
  /// Used by the classic single-sender Dolev-Strong BB baseline.
  void set_broadcaster(bool broadcaster) { broadcaster_ = broadcaster; }

  void on_send(Round local_r, Outbox& out);
  void on_receive(Round local_r, std::span<const Message> inbox);

  /// The strong-BA decision; valid after rounds(t) local rounds.
  [[nodiscard]] WireValue decide() const;

  /// Per-instance extraction (for tests): the value broadcast by `instance`
  /// if exactly one was extracted, bottom otherwise.
  [[nodiscard]] WireValue slot(ProcessId instance) const;

 private:
  [[nodiscard]] Digest relay_digest(ProcessId instance,
                                    const WireValue& v) const;
  void accept(Round local_r, ProcessId instance, const WireValue& v,
              const AggSignature& chain);

  ProtocolContext ctx_;
  bool active_ = false;
  bool broadcaster_ = true;
  WireValue input_ = bottom_value();

  // Extracted values per instance (Dolev-Strong W_i, capped at 2: a second
  // distinct value already proves the instance owner Byzantine).
  std::vector<std::vector<WireValue>> extracted_;
  // Relays scheduled for the next local round.
  std::vector<PayloadPtr> pending_relays_;
};

}  // namespace mewc::fallback
