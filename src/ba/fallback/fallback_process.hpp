// Standalone IProcess wrapper around the A_fallback engine, so the fallback
// can be tested and benchmarked as an independent strong BA protocol (it is
// one: Momose-Ren's role in the paper).
#pragma once

#include "ba/fallback/dolev_strong.hpp"
#include "sim/process.hpp"

namespace mewc::fallback {

class FallbackBaProcess final : public IProcess {
 public:
  FallbackBaProcess(const ProtocolContext& ctx, WireValue input)
      : engine_(ctx) {
    engine_.set_input(input);
    engine_.activate();
  }

  [[nodiscard]] static Round total_rounds(std::uint32_t t) {
    return DolevStrongEngine::rounds(t);
  }

  void on_send(Round r, Outbox& out) override { engine_.on_send(r, out); }
  void on_receive(Round r, std::span<const Message> inbox) override {
    engine_.on_receive(r, inbox);
  }

  [[nodiscard]] WireValue decision() const { return engine_.decide(); }
  [[nodiscard]] const DolevStrongEngine& engine() const { return engine_; }

 private:
  DolevStrongEngine engine_;
};

}  // namespace mewc::fallback
