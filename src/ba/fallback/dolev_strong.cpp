#include "ba/fallback/dolev_strong.hpp"

#include <algorithm>
#include <map>

#include "check/coverage.hpp"
#include "common/check.hpp"
#include "net/arena.hpp"

namespace mewc::fallback {

bool wire_value_less(const WireValue& a, const WireValue& b) {
  auto key = [](const WireValue& w) {
    return std::tuple(w.value.raw, static_cast<std::uint8_t>(w.prov), w.aux,
                      w.sig ? w.sig->tag : 0, w.cert ? w.cert->tag : 0);
  };
  return key(a) < key(b);
}

DolevStrongEngine::DolevStrongEngine(const ProtocolContext& ctx)
    : ctx_(ctx), extracted_(ctx.n) {}

Digest ds_relay_digest(std::uint64_t run_instance, ProcessId ds_instance,
                       const WireValue& v) {
  return DigestBuilder("ds.value")
      .field(run_instance)
      .field(ds_instance)
      .field(v.content_digest().bits)
      .done();
}

Digest DolevStrongEngine::relay_digest(ProcessId instance,
                                       const WireValue& v) const {
  return ds_relay_digest(ctx_.instance, instance, v);
}

void DolevStrongEngine::on_send(Round local_r, Outbox& out) {
  if (!active_) return;
  if (local_r == 1) {
    if (!broadcaster_) return;
    // Start my own instance: broadcast my input with a 1-signature chain.
    MEWC_COV(afb_broadcast_input);
    auto msg = pool::make<DsRelayMsg>();
    msg->instance = ctx_.id;
    msg->value = input_;
    msg->chain = aggregate_start(
        ctx_.pki(), ctx_.sign(relay_digest(ctx_.id, input_)));
    out.broadcast(msg);
    return;
  }
  for (auto& relay : pending_relays_) out.broadcast(relay);
  pending_relays_.clear();
}

void DolevStrongEngine::accept(Round local_r, ProcessId instance,
                               const WireValue& v,
                               const AggSignature& chain) {
  auto& set = extracted_[instance];
  if (set.size() >= 2) return;  // instance owner already proven Byzantine
  if (std::find(set.begin(), set.end(), v) != set.end()) return;
  MEWC_COV(afb_accept);
  set.push_back(v);

  // Relay with my signature appended, unless the schedule has ended (an
  // acceptance in round t+1 needs no relay: its chain of t+1 signers
  // contains a correct process that already relayed it earlier).
  if (local_r > ctx_.t) return;
  MEWC_COV(afb_relay);
  auto msg = pool::make<DsRelayMsg>();
  msg->instance = instance;
  msg->value = v;
  msg->chain = chain;
  if (!msg->chain.signers.contains(ctx_.id)) {
    aggregate_add(ctx_.pki(), msg->chain,
                  ctx_.sign(relay_digest(instance, v)));
  }
  pending_relays_.push_back(std::move(msg));
}

void DolevStrongEngine::on_receive(Round local_r,
                                   std::span<const Message> inbox) {
  if (!active_) return;
  if (local_r > ctx_.t + 1) return;  // final round: nothing new can qualify
  for (const Message& m : inbox) {
    const auto* relay = payload_cast<DsRelayMsg>(m.body);
    if (relay == nullptr) continue;
    if (relay->instance >= ctx_.n) continue;
    // Dolev-Strong acceptance: a valid chain of >= r distinct signers that
    // includes the instance owner, over exactly this value.
    if (relay->chain.signers.count() < local_r) {
      MEWC_COV(afb_reject_chain);
      continue;
    }
    if (!relay->chain.signers.contains(relay->instance)) {
      MEWC_COV(afb_reject_chain);
      continue;
    }
    if (relay->chain.digest != relay_digest(relay->instance, relay->value)) {
      MEWC_COV(afb_reject_chain);
      continue;
    }
    if (!aggregate_verify(ctx_.pki(), relay->chain)) {
      MEWC_COV(afb_reject_chain);
      continue;
    }
    accept(local_r, relay->instance, relay->value, relay->chain);
  }
}

WireValue DolevStrongEngine::slot(ProcessId instance) const {
  const auto& set = extracted_[instance];
  return set.size() == 1 ? set.front() : bottom_value();
}

WireValue DolevStrongEngine::decide() const {
  // Majority over raw values; the representative content for the winning
  // raw is the most frequent content, ties broken by wire_value_less. All
  // correct processes hold identical slot vectors, so any deterministic
  // rule preserves agreement.
  std::map<std::uint64_t, std::uint32_t> raw_count;
  std::vector<WireValue> slots;
  for (ProcessId i = 0; i < ctx_.n; ++i) {
    WireValue s = slot(i);
    if (s.is_bottom()) continue;
    slots.push_back(s);
    ++raw_count[s.value.raw];
  }
  if (slots.empty()) {
    MEWC_COV(afb_decide_empty);
    return bottom_value();
  }
  MEWC_COV(afb_decide_majority);

  std::uint64_t best_raw = 0;
  std::uint32_t best_count = 0;
  for (const auto& [raw, count] : raw_count) {
    if (count > best_count) {  // map iteration is ordered: ties keep smaller
      best_count = count;
      best_raw = raw;
    }
  }

  std::vector<WireValue> candidates;
  for (const WireValue& s : slots) {
    if (s.value.raw == best_raw) candidates.push_back(s);
  }
  std::map<std::size_t, std::uint32_t> content_count;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (candidates[i] == candidates[j]) ++content_count[i];
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (content_count[i] > content_count[best] ||
        (content_count[i] == content_count[best] &&
         wire_value_less(candidates[i], candidates[best]))) {
      best = i;
    }
  }
  return candidates[best];
}

}  // namespace mewc::fallback
