// Modeled word cost of a Momose-Ren fallback execution (DESIGN.md SUB-1).
//
// Momose-Ren (DISC 2021) solves synchronous strong BA at n = 2t+1 in O(n^2)
// words. Our substituted Dolev-Strong fallback is correct but costs O(n^3)
// worst case, so benches that enter the fallback regime report, next to the
// measured words, the modeled quadratic cost a Momose-Ren execution would
// incur. The constant is calibrated to their protocol's structure: a small
// constant number of all-to-all rounds of constant-size (threshold-
// certificate-compressed) messages per view over O(1) amortized views.
#pragma once

#include <cstdint>

namespace mewc::fallback {

/// Modeled words for one fallback execution at system size n.
[[nodiscard]] constexpr std::uint64_t modeled_momose_ren_words(
    std::uint64_t n) {
  // ~6 all-to-all exchanges of 2-word messages across the execution.
  return 12 * n * n;
}

}  // namespace mewc::fallback
