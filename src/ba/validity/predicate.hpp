// Unique-validity predicate framework (paper Section 3, Definition 3).
//
// Weak BA is parameterized by an arbitrary locally-computable predicate
// validate(v). The paper's power comes from choosing the "right" predicate:
// BB chooses BB_valid(v) := v is signed by the sender OR by t+1 processes
// (Section 5), and Section 3 sketches a predicate requiring t+1 signatures
// attesting "this was my input" that turns unique validity into strong
// unanimity on the signed values.
#pragma once

#include <memory>

#include "ba/value.hpp"
#include "crypto/family.hpp"

namespace mewc {

class ValidityPredicate {
 public:
  virtual ~ValidityPredicate() = default;

  [[nodiscard]] virtual bool validate(const WireValue& v) const = 0;

  /// Human-readable name for traces and experiment output.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Accepts any non-bottom value. Models plain external validity with a
/// trivially satisfiable predicate (useful for standalone weak BA tests).
class AlwaysValid final : public ValidityPredicate {
 public:
  [[nodiscard]] bool validate(const WireValue& v) const override {
    return !v.is_bottom();
  }
  [[nodiscard]] const char* name() const override { return "always_valid"; }
};

/// Digest the designated sender signs over its input in BB (Algorithm 1,
/// round 1). Domain-separated by the run instance.
[[nodiscard]] Digest bb_sender_digest(std::uint64_t instance, Value v);

/// Digest of the <idk, j> message of BB phase j (Algorithm 2, line 21); the
/// (t+1, n)-threshold certificate over it is the idk quorum certificate.
[[nodiscard]] Digest bb_idk_digest(std::uint64_t instance, std::uint64_t j);

/// BB_valid (Section 5): true iff v is the sender's signed value or an idk
/// quorum certificate signed by t+1 processes.
class BbValid final : public ValidityPredicate {
 public:
  BbValid(const ThresholdFamily& crypto, std::uint64_t instance,
          ProcessId sender)
      : crypto_(&crypto), instance_(instance), sender_(sender) {}

  [[nodiscard]] bool validate(const WireValue& v) const override;
  [[nodiscard]] const char* name() const override { return "bb_valid"; }

  [[nodiscard]] ProcessId sender() const { return sender_; }

 private:
  const ThresholdFamily* crypto_;
  std::uint64_t instance_;
  ProcessId sender_;
};

/// Digest a process signs to attest "value v was my initial input" — the
/// Section 3 example predicate's attestation.
[[nodiscard]] Digest input_attestation_digest(std::uint64_t instance, Value v);

/// Accepts values certified by a (t+1, n)-threshold certificate over input
/// attestations: at least one correct process proposed v. With this
/// predicate, unique validity yields strong unanimity on the signed inputs
/// (the paper's Section 3 example; exercised by examples/auditable_voting).
class InputCertified final : public ValidityPredicate {
 public:
  InputCertified(const ThresholdFamily& crypto, std::uint64_t instance)
      : crypto_(&crypto), instance_(instance) {}

  [[nodiscard]] bool validate(const WireValue& v) const override;
  [[nodiscard]] const char* name() const override { return "input_certified"; }

 private:
  const ThresholdFamily* crypto_;
  std::uint64_t instance_;
};

}  // namespace mewc
