#include "ba/validity/predicate.hpp"

#include "check/coverage.hpp"

namespace mewc {

Digest bb_sender_digest(std::uint64_t instance, Value v) {
  return DigestBuilder("bb.sender_value").field(instance).field(v).done();
}

Digest bb_idk_digest(std::uint64_t instance, std::uint64_t j) {
  return DigestBuilder("bb.idk").field(instance).field(j).done();
}

bool BbValid::validate(const WireValue& v) const {
  switch (v.prov) {
    case Provenance::kSigned: {
      // Signed by the designated sender over this instance's value digest.
      const bool ok = v.sig && v.sig->signer == sender_ &&
                      !v.value.is_bottom() && !v.value.is_idk() &&
                      v.sig->digest == bb_sender_digest(instance_, v.value) &&
                      crypto_->pki().verify(*v.sig);
      if (ok) {
        MEWC_COV(bbvalid_signed_accept);
      } else {
        MEWC_COV(bbvalid_signed_reject);
      }
      return ok;
    }
    case Provenance::kCertified: {
      // An idk quorum certificate: t+1 processes signed <idk, j>.
      const std::uint32_t k = crypto_->t() + 1;
      const bool ok = v.cert && v.value == kIdkValue && v.cert->k == k &&
                      v.cert->digest == bb_idk_digest(instance_, v.aux) &&
                      crypto_->scheme(k).verify(*v.cert);
      if (ok) {
        MEWC_COV(bbvalid_cert_accept);
      } else {
        MEWC_COV(bbvalid_cert_reject);
      }
      return ok;
    }
    case Provenance::kPlain:
      MEWC_COV(bbvalid_plain_reject);
      return false;
  }
  return false;
}

Digest input_attestation_digest(std::uint64_t instance, Value v) {
  return DigestBuilder("ba.input_attestation").field(instance).field(v).done();
}

bool InputCertified::validate(const WireValue& v) const {
  if (v.prov != Provenance::kCertified || !v.cert) return false;
  if (v.value.is_bottom() || v.value.is_idk()) return false;
  const std::uint32_t k = crypto_->t() + 1;
  if (v.cert->k != k) return false;
  if (v.cert->digest != input_attestation_digest(instance_, v.value)) {
    return false;
  }
  return crypto_->scheme(k).verify(*v.cert);
}

}  // namespace mewc
