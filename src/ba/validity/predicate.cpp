#include "ba/validity/predicate.hpp"

namespace mewc {

Digest bb_sender_digest(std::uint64_t instance, Value v) {
  return DigestBuilder("bb.sender_value").field(instance).field(v).done();
}

Digest bb_idk_digest(std::uint64_t instance, std::uint64_t j) {
  return DigestBuilder("bb.idk").field(instance).field(j).done();
}

bool BbValid::validate(const WireValue& v) const {
  switch (v.prov) {
    case Provenance::kSigned: {
      // Signed by the designated sender over this instance's value digest.
      if (!v.sig || v.sig->signer != sender_) return false;
      if (v.value.is_bottom() || v.value.is_idk()) return false;
      if (v.sig->digest != bb_sender_digest(instance_, v.value)) return false;
      return crypto_->pki().verify(*v.sig);
    }
    case Provenance::kCertified: {
      // An idk quorum certificate: t+1 processes signed <idk, j>.
      if (!v.cert || v.value != kIdkValue) return false;
      const std::uint32_t k = crypto_->t() + 1;
      if (v.cert->k != k) return false;
      if (v.cert->digest != bb_idk_digest(instance_, v.aux)) return false;
      return crypto_->scheme(k).verify(*v.cert);
    }
    case Provenance::kPlain:
      return false;
  }
  return false;
}

Digest input_attestation_digest(std::uint64_t instance, Value v) {
  return DigestBuilder("ba.input_attestation").field(instance).field(v).done();
}

bool InputCertified::validate(const WireValue& v) const {
  if (v.prov != Provenance::kCertified || !v.cert) return false;
  if (v.value.is_bottom() || v.value.is_idk()) return false;
  const std::uint32_t k = crypto_->t() + 1;
  if (v.cert->k != k) return false;
  if (v.cert->digest != input_attestation_digest(instance_, v.value)) {
    return false;
  }
  return crypto_->scheme(k).verify(*v.cert);
}

}  // namespace mewc
