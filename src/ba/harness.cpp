#include "ba/harness.hpp"

#include <algorithm>

#include "ba/fallback/fallback_process.hpp"
#include "ba/vector/interactive_consistency.hpp"
#include "wire/codec.hpp"

namespace mewc::harness {

namespace {

/// Shared run skeleton: builds (or fetches) the setup, processes via
/// `make`, runs `rounds`, and extracts per-process results via `collect`.
template <typename Proc, typename Result, typename MakeFn, typename CollectFn>
Result run_protocol(const RunSpec& spec, Round rounds, Adversary& adversary,
                    MakeFn make, CollectFn collect) {
  std::optional<ThresholdFamily> owned;
  ThresholdFamily* fam = nullptr;
  if (spec.setup_cache != nullptr) {
    fam = &spec.setup_cache->family(spec.n, spec.t, spec.backend, spec.seed);
    // Cached families accumulate issuance across runs; per-run signature
    // counts must match a fresh family's, so start every run from zero.
    fam->pki().reset_signature_counters();
  } else {
    owned.emplace(spec.n, spec.t, spec.backend, spec.seed);
    fam = &*owned;
  }
  ThresholdFamily& family = *fam;

  std::vector<KeyBundle> bundles;
  bundles.reserve(spec.n);
  for (ProcessId p = 0; p < spec.n; ++p) {
    bundles.push_back(family.issue_bundle(p));
  }
  if (spec.on_setup) spec.on_setup(family);

  std::vector<std::unique_ptr<IProcess>> processes;
  processes.reserve(spec.n);
  for (ProcessId p = 0; p < spec.n; ++p) {
    ProtocolContext ctx;
    ctx.id = p;
    ctx.n = spec.n;
    ctx.t = spec.t;
    ctx.instance = spec.instance;
    ctx.crypto = &family;
    ctx.keys = &bundles[p];
    processes.push_back(make(ctx, family));
  }

  ExecutorHooks hooks;
  if (spec.codec_roundtrip) hooks.transform = wire::roundtrip;
  hooks.recorder = spec.recorder;
  const std::unique_ptr<IExecutor> exec =
      make_executor(spec.executor, family, std::move(bundles),
                    std::move(processes), adversary, std::move(hooks));
  exec->run(rounds);
  if (spec.on_teardown) spec.on_teardown(family);

  Result res;
  res.meter = exec->meter();
  res.corrupted = exec->corrupted();
  res.signatures_issued = family.pki().signatures_issued();
  res.rounds = rounds;
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (exec->is_corrupted(p)) {
      collect(res, p, nullptr);
    } else {
      collect(res, p, static_cast<const Proc*>(&exec->process(p)));
    }
  }
  return res;
}

template <typename Stats>
bool stats_all_decided(const std::vector<std::optional<Stats>>& stats) {
  return std::all_of(stats.begin(), stats.end(), [](const auto& s) {
    return !s.has_value() || s->decided;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// SetupCache + RunSpec
// ---------------------------------------------------------------------------

ThresholdFamily& SetupCache::family(std::uint32_t n, std::uint32_t t,
                                    ThresholdBackend backend,
                                    std::uint64_t seed) {
  const Key key{n, t, static_cast<int>(backend), seed};
  auto it = families_.find(key);
  if (it != families_.end()) {
    ++hits_;
    return *it->second;
  }
  ++misses_;
  auto family = std::make_unique<ThresholdFamily>(n, t, backend, seed);
  return *families_.emplace(key, std::move(family)).first->second;
}

CryptoVerifyStats SetupCache::crypto_verify_stats() const {
  CryptoVerifyStats total;
  for (const auto& [key, family] : families_) {
    total += family->crypto_verify_stats();
  }
  return total;
}

RunSpec RunSpec::checked(std::uint32_t n, std::uint32_t t) {
  MEWC_CHECK_MSG(n >= 2 * t + 1, "RunSpec requires n >= 2t+1");
  RunSpec s;
  s.n = n;
  s.t = t;
  return s;
}

std::string RunSpec::describe() const {
  std::string s = "n=" + std::to_string(n) + " t=" + std::to_string(t) +
                  " seed=" + std::to_string(seed);
  if (backend == ThresholdBackend::kShamir) s += " backend=shamir";
  if (backend == ThresholdBackend::kReal) s += " backend=real";
  if (codec_roundtrip) s += " roundtrip";
  if (executor == ExecutorKind::kEvent) s += " exec=event";
  return s;
}

bool RunOutcome::is_corrupted(ProcessId p) const {
  return std::find(corrupted.begin(), corrupted.end(), p) != corrupted.end();
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

bool RunReport::all_decided() const {
  if (!vectors.empty()) {
    for (ProcessId p = 0; p < vectors.size(); ++p) {
      if (!is_corrupted(p) && !vectors[p].has_value()) return false;
    }
    return true;
  }
  for (ProcessId p = 0; p < decided.size(); ++p) {
    if (!is_corrupted(p) && !decided[p]) return false;
  }
  return true;
}

bool RunReport::agreement() const {
  if (!vectors.empty()) {
    const std::vector<Value>* seen = nullptr;
    for (const auto& v : vectors) {
      if (!v) continue;
      if (seen == nullptr) {
        seen = &*v;
      } else if (*seen != *v) {
        return false;
      }
    }
    return true;
  }
  std::optional<WireValue> seen;
  for (ProcessId p = 0; p < decisions.size(); ++p) {
    if (is_corrupted(p)) continue;
    if (!seen) {
      seen = decisions[p];
    } else if (!(*seen == decisions[p])) {
      return false;
    }
  }
  return true;
}

WireValue RunReport::decision() const {
  for (ProcessId p = 0; p < decisions.size(); ++p) {
    if (!is_corrupted(p)) return decisions[p];
  }
  return bottom_value();
}

std::vector<Value> RunReport::vector() const {
  for (const auto& v : vectors) {
    if (v) return *v;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

std::vector<WireValue> ProtocolDriver::prepare(std::uint32_t n,
                                               Value base) const {
  Value v = base;
  if (traits().binary_values && !v.is_bottom() && v.raw > 1) v = Value(1);
  return std::vector<WireValue>(n, WireValue::plain(v));
}

namespace {

void fill_common(RunReport& r, const RunOutcome& o, const char* name,
                 std::uint32_t n) {
  r.protocol = name;
  r.meter = o.meter;
  r.corrupted = o.corrupted;
  r.signatures_issued = o.signatures_issued;
  r.rounds = o.rounds;
  r.decided.assign(n, false);
  r.decisions.assign(n, bottom_value());
}

class BbDriver final : public ProtocolDriver {
 public:
  const char* name() const override { return "bb"; }
  DriverTraits traits() const override {
    // BB vetting phase j occupies rounds 3(j-1)+2 .. 3(j-1)+4; the killer
    // strikes ahead of the leader-value round (matching the tools' long-
    // standing geometry).
    DriverTraits tr;
    tr.single_sender = true;
    tr.phase_first = 4;
    tr.phase_len = 3;
    return tr;
  }
  Round total_rounds(std::uint32_t n, std::uint32_t t) const override {
    return bb::BbProcess::total_rounds(n, t);
  }
  Round help_round(std::uint32_t n) const override {
    // BB embeds a weak BA starting after dissemination + n vetting phases.
    return 1 + 3 * n + 5 * n + 1;
  }
  RunReport run(const RunSpec& spec, const RunInputs& inputs,
                Adversary& adversary) const override {
    MEWC_CHECK_MSG(inputs.sender < spec.n, "bb needs a designated sender");
    MEWC_CHECK(inputs.values.size() == spec.n);
    const BbResult res = run_bb(spec, inputs.sender,
                                inputs.values[inputs.sender].value, adversary);
    RunReport r;
    fill_common(r, res, name(), spec.n);
    r.sender = res.sender;
    for (ProcessId p = 0; p < spec.n; ++p) {
      if (const auto& s = res.stats[p]) {
        r.decided[p] = s->decided;
        r.decisions[p] = WireValue::plain(s->decision);
      }
    }
    r.any_fallback = res.any_fallback();
    r.nonsilent_leaders = res.nonsilent_leaders();
    return r;
  }
};

class WbaDriver final : public ProtocolDriver {
 public:
  const char* name() const override { return "weak-ba"; }
  DriverTraits traits() const override {
    // Weak BA phase j occupies rounds 5(j-1)+1 .. 5j.
    DriverTraits tr;
    tr.phase_first = 3;
    tr.phase_len = 5;
    return tr;
  }
  Round total_rounds(std::uint32_t n, std::uint32_t t) const override {
    return wba::WeakBaProcess::total_rounds(n, t);
  }
  Round help_round(std::uint32_t n) const override { return 5 * n + 1; }
  RunReport run(const RunSpec& spec, const RunInputs& inputs,
                Adversary& adversary) const override {
    const PredicateFactory predicate =
        inputs.predicate ? inputs.predicate : always_valid_factory();
    const WbaResult res =
        run_weak_ba(spec, inputs.values, predicate, adversary);
    RunReport r;
    fill_common(r, res, name(), spec.n);
    for (ProcessId p = 0; p < spec.n; ++p) {
      if (const auto& s = res.stats[p]) {
        r.decided[p] = s->decided;
        r.decisions[p] = s->decision;
      }
    }
    r.any_fallback = res.any_fallback();
    r.nonsilent_leaders = res.nonsilent_leaders();
    r.help_reqs = res.help_reqs_sent();
    return r;
  }
};

class SbaDriver final : public ProtocolDriver {
 public:
  const char* name() const override { return "strong-ba"; }
  DriverTraits traits() const override {
    DriverTraits tr;
    tr.binary_values = true;
    return tr;
  }
  Round total_rounds(std::uint32_t, std::uint32_t t) const override {
    return sba::StrongBaProcess::total_rounds(t);
  }
  RunReport run(const RunSpec& spec, const RunInputs& inputs,
                Adversary& adversary) const override {
    std::vector<Value> values;
    values.reserve(inputs.values.size());
    for (const auto& w : inputs.values) values.push_back(w.value);
    const SbaResult res = run_strong_ba(spec, values, adversary);
    RunReport r;
    fill_common(r, res, name(), spec.n);
    for (ProcessId p = 0; p < spec.n; ++p) {
      if (const auto& s = res.stats[p]) {
        r.decided[p] = s->decided;
        r.decisions[p] = WireValue::plain(s->decision);
      }
    }
    r.any_fallback = res.any_fallback();
    r.all_fast = res.all_fast();
    return r;
  }
};

class FallbackDriver final : public ProtocolDriver {
 public:
  const char* name() const override { return "fallback"; }
  DriverTraits traits() const override { return {}; }
  Round total_rounds(std::uint32_t, std::uint32_t t) const override {
    return fallback::FallbackBaProcess::total_rounds(t);
  }
  RunReport run(const RunSpec& spec, const RunInputs& inputs,
                Adversary& adversary) const override {
    const FallbackResult res = run_fallback_ba(spec, inputs.values, adversary);
    RunReport r;
    fill_common(r, res, name(), spec.n);
    for (ProcessId p = 0; p < spec.n; ++p) {
      if (const auto& d = res.decisions[p]) {
        r.decided[p] = true;
        r.decisions[p] = *d;
      }
    }
    return r;
  }
};

class DsBbDriver final : public ProtocolDriver {
 public:
  const char* name() const override { return "ds-bb"; }
  DriverTraits traits() const override {
    DriverTraits tr;
    tr.single_sender = true;
    return tr;
  }
  Round total_rounds(std::uint32_t, std::uint32_t t) const override {
    return baseline::DolevStrongBbProcess::total_rounds(t);
  }
  RunReport run(const RunSpec& spec, const RunInputs& inputs,
                Adversary& adversary) const override {
    MEWC_CHECK_MSG(inputs.sender < spec.n, "ds-bb needs a designated sender");
    MEWC_CHECK(inputs.values.size() == spec.n);
    const DsBbResult res = run_ds_bb(
        spec, inputs.sender, inputs.values[inputs.sender].value, adversary);
    RunReport r;
    fill_common(r, res, name(), spec.n);
    r.sender = inputs.sender;
    for (ProcessId p = 0; p < spec.n; ++p) {
      if (const auto& d = res.decisions[p]) {
        r.decided[p] = true;
        r.decisions[p] = WireValue::plain(*d);
      }
    }
    return r;
  }
};

class IcDriver final : public ProtocolDriver {
 public:
  const char* name() const override { return "ic"; }
  DriverTraits traits() const override {
    DriverTraits tr;
    tr.vector_output = true;
    return tr;
  }
  Round total_rounds(std::uint32_t n, std::uint32_t t) const override {
    return ic::InteractiveConsistencyProcess::total_rounds(n, t);
  }
  RunReport run(const RunSpec& spec, const RunInputs& inputs,
                Adversary& adversary) const override {
    std::vector<Value> values;
    values.reserve(inputs.values.size());
    for (const auto& w : inputs.values) values.push_back(w.value);
    const IcResult res = run_ic(spec, values, adversary);
    RunReport r;
    fill_common(r, res, name(), spec.n);
    r.vectors = res.vectors;
    for (ProcessId p = 0; p < spec.n; ++p) {
      r.decided[p] = res.vectors[p].has_value();
    }
    return r;
  }
};

}  // namespace

const std::vector<const ProtocolDriver*>& drivers() {
  static const BbDriver bb_driver;
  static const WbaDriver wba_driver;
  static const SbaDriver sba_driver;
  static const FallbackDriver fallback_driver;
  static const DsBbDriver ds_bb_driver;
  static const IcDriver ic_driver;
  static const std::vector<const ProtocolDriver*> kAll = {
      &bb_driver,      &wba_driver,   &sba_driver,
      &fallback_driver, &ds_bb_driver, &ic_driver};
  return kAll;
}

const ProtocolDriver* find_driver(std::string_view name) {
  for (const ProtocolDriver* d : drivers()) {
    if (name == d->name()) return d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// BB
// ---------------------------------------------------------------------------

BbResult run_bb(const RunSpec& spec, ProcessId sender, Value sender_input,
                Adversary& adversary) {
  auto res = run_protocol<bb::BbProcess, BbResult>(
      spec, bb::BbProcess::total_rounds(spec.n, spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<bb::BbProcess>(ctx, sender, sender_input);
      },
      [](BbResult& r, ProcessId, const bb::BbProcess* p) {
        r.stats.push_back(p ? std::optional(p->stats()) : std::nullopt);
      });
  res.sender = sender;
  return res;
}

bool BbResult::all_decided() const { return stats_all_decided(stats); }

bool BbResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& s : stats) {
    if (!s) continue;
    if (!seen) {
      seen = s->decision;
    } else if (*seen != s->decision) {
      return false;
    }
  }
  return true;
}

Value BbResult::decision() const {
  for (const auto& s : stats) {
    if (s) return s->decision;
  }
  return kBottom;
}

std::uint32_t BbResult::nonsilent_leaders() const {
  std::uint32_t c = 0;
  for (const auto& s : stats) c += (s && s->led_nonsilent_phase) ? 1 : 0;
  return c;
}

bool BbResult::any_fallback() const {
  return std::any_of(stats.begin(), stats.end(), [](const auto& s) {
    return s && s->fallback_participant;
  });
}

// ---------------------------------------------------------------------------
// Weak BA
// ---------------------------------------------------------------------------

PredicateFactory always_valid_factory() {
  return [](const ThresholdFamily&, std::uint64_t) {
    return std::make_shared<const AlwaysValid>();
  };
}

WbaResult run_weak_ba(const RunSpec& spec,
                      const std::vector<WireValue>& inputs,
                      const PredicateFactory& predicate,
                      Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<wba::WeakBaProcess, WbaResult>(
      spec, wba::WeakBaProcess::total_rounds(spec.n, spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily& fam) {
        return std::make_unique<wba::WeakBaProcess>(
            ctx, predicate(fam, spec.instance), inputs[ctx.id]);
      },
      [](WbaResult& r, ProcessId, const wba::WeakBaProcess* p) {
        r.stats.push_back(p ? std::optional(p->stats()) : std::nullopt);
      });
}

bool WbaResult::all_decided() const { return stats_all_decided(stats); }

bool WbaResult::agreement() const {
  std::optional<WireValue> seen;
  for (const auto& s : stats) {
    if (!s) continue;
    if (!seen) {
      seen = s->decision;
    } else if (!(*seen == s->decision)) {
      return false;
    }
  }
  return true;
}

WireValue WbaResult::decision() const {
  for (const auto& s : stats) {
    if (s) return s->decision;
  }
  return bottom_value();
}

std::uint32_t WbaResult::nonsilent_leaders() const {
  std::uint32_t c = 0;
  for (const auto& s : stats) c += (s && s->led_nonsilent_phase) ? 1 : 0;
  return c;
}

bool WbaResult::any_fallback() const {
  return std::any_of(stats.begin(), stats.end(), [](const auto& s) {
    return s && s->fallback_participant;
  });
}

std::uint32_t WbaResult::help_reqs_sent() const {
  std::uint32_t c = 0;
  for (const auto& s : stats) c += (s && s->sent_help_req) ? 1 : 0;
  return c;
}

// ---------------------------------------------------------------------------
// Strong BA (Algorithm 5)
// ---------------------------------------------------------------------------

SbaResult run_strong_ba(const RunSpec& spec, const std::vector<Value>& inputs,
                        Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<sba::StrongBaProcess, SbaResult>(
      spec, sba::StrongBaProcess::total_rounds(spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<sba::StrongBaProcess>(ctx, inputs[ctx.id]);
      },
      [](SbaResult& r, ProcessId, const sba::StrongBaProcess* p) {
        r.stats.push_back(p ? std::optional(p->stats()) : std::nullopt);
      });
}

bool SbaResult::all_decided() const { return stats_all_decided(stats); }

bool SbaResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& s : stats) {
    if (!s) continue;
    if (!seen) {
      seen = s->decision;
    } else if (*seen != s->decision) {
      return false;
    }
  }
  return true;
}

Value SbaResult::decision() const {
  for (const auto& s : stats) {
    if (s) return s->decision;
  }
  return kBottom;
}

bool SbaResult::any_fallback() const {
  return std::any_of(stats.begin(), stats.end(), [](const auto& s) {
    return s && s->fallback_participant;
  });
}

bool SbaResult::all_fast() const {
  return std::all_of(stats.begin(), stats.end(), [](const auto& s) {
    return !s.has_value() || s->decided_fast;
  });
}

// ---------------------------------------------------------------------------
// A_fallback standalone + Dolev-Strong BB baseline
// ---------------------------------------------------------------------------

FallbackResult run_fallback_ba(const RunSpec& spec,
                               const std::vector<WireValue>& inputs,
                               Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<fallback::FallbackBaProcess, FallbackResult>(
      spec, fallback::FallbackBaProcess::total_rounds(spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<fallback::FallbackBaProcess>(ctx,
                                                             inputs[ctx.id]);
      },
      [](FallbackResult& r, ProcessId, const fallback::FallbackBaProcess* p) {
        r.decisions.push_back(p ? std::optional(p->decision()) : std::nullopt);
      });
}

bool FallbackResult::agreement() const {
  std::optional<WireValue> seen;
  for (const auto& d : decisions) {
    if (!d) continue;
    if (!seen) {
      seen = *d;
    } else if (!(*seen == *d)) {
      return false;
    }
  }
  return true;
}

WireValue FallbackResult::decision() const {
  for (const auto& d : decisions) {
    if (d) return *d;
  }
  return bottom_value();
}

DsBbResult run_ds_bb(const RunSpec& spec, ProcessId sender, Value sender_input,
                     Adversary& adversary) {
  return run_protocol<baseline::DolevStrongBbProcess, DsBbResult>(
      spec, baseline::DolevStrongBbProcess::total_rounds(spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<baseline::DolevStrongBbProcess>(ctx, sender,
                                                                sender_input);
      },
      [](DsBbResult& r, ProcessId, const baseline::DolevStrongBbProcess* p) {
        r.decisions.push_back(p ? std::optional(p->decision()) : std::nullopt);
      });
}

bool DsBbResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& d : decisions) {
    if (!d) continue;
    if (!seen) {
      seen = *d;
    } else if (*seen != *d) {
      return false;
    }
  }
  return true;
}

Value DsBbResult::decision() const {
  for (const auto& d : decisions) {
    if (d) return *d;
  }
  return kBottom;
}

// ---------------------------------------------------------------------------
// Interactive consistency
// ---------------------------------------------------------------------------

IcResult run_ic(const RunSpec& spec, const std::vector<Value>& inputs,
                Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<ic::InteractiveConsistencyProcess, IcResult>(
      spec, ic::InteractiveConsistencyProcess::total_rounds(spec.n, spec.t),
      adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<ic::InteractiveConsistencyProcess>(
            ctx, inputs[ctx.id]);
      },
      [](IcResult& r, ProcessId, const ic::InteractiveConsistencyProcess* p) {
        if (p != nullptr && p->stats().decided) {
          r.vectors.push_back(p->stats().vector);
        } else {
          r.vectors.push_back(std::nullopt);
        }
      });
}

bool IcResult::all_decided() const {
  for (ProcessId p = 0; p < vectors.size(); ++p) {
    if (!is_corrupted(p) && !vectors[p].has_value()) return false;
  }
  return true;
}

bool IcResult::agreement() const {
  const std::vector<Value>* seen = nullptr;
  for (const auto& v : vectors) {
    if (!v) continue;
    if (seen == nullptr) {
      seen = &*v;
    } else if (*seen != *v) {
      return false;
    }
  }
  return true;
}

std::vector<Value> IcResult::vector() const {
  for (const auto& v : vectors) {
    if (v) return *v;
  }
  return {};
}

}  // namespace mewc::harness
