#include "ba/harness.hpp"

#include <algorithm>

#include "ba/vector/interactive_consistency.hpp"
#include "wire/codec.hpp"

namespace mewc::harness {

namespace {

/// Shared run skeleton: builds the setup, processes via `make`, runs
/// `rounds`, and extracts per-process results via `collect`.
template <typename Proc, typename Result, typename MakeFn, typename CollectFn>
Result run_protocol(const RunSpec& spec, Round rounds, Adversary& adversary,
                    MakeFn make, CollectFn collect) {
  ThresholdFamily family(spec.n, spec.t, spec.backend, spec.seed);

  std::vector<KeyBundle> bundles;
  bundles.reserve(spec.n);
  for (ProcessId p = 0; p < spec.n; ++p) {
    bundles.push_back(family.issue_bundle(p));
  }
  if (spec.on_setup) spec.on_setup(family);

  std::vector<std::unique_ptr<IProcess>> processes;
  processes.reserve(spec.n);
  for (ProcessId p = 0; p < spec.n; ++p) {
    ProtocolContext ctx;
    ctx.id = p;
    ctx.n = spec.n;
    ctx.t = spec.t;
    ctx.instance = spec.instance;
    ctx.crypto = &family;
    ctx.keys = &bundles[p];
    processes.push_back(make(ctx, family));
  }

  Executor exec(family, std::move(bundles), std::move(processes), adversary);
  if (spec.codec_roundtrip) exec.set_payload_transform(wire::roundtrip);
  if (spec.recorder) exec.set_message_recorder(spec.recorder);
  exec.run(rounds);

  Result res;
  res.meter = exec.meter();
  res.corrupted = exec.corrupted();
  res.signatures_issued = family.pki().signatures_issued();
  res.rounds = rounds;
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (exec.is_corrupted(p)) {
      collect(res, p, nullptr);
    } else {
      collect(res, p, static_cast<const Proc*>(&exec.process(p)));
    }
  }
  return res;
}

template <typename Stats>
bool stats_all_decided(const std::vector<std::optional<Stats>>& stats) {
  return std::all_of(stats.begin(), stats.end(), [](const auto& s) {
    return !s.has_value() || s->decided;
  });
}

}  // namespace

bool RunOutcome::is_corrupted(ProcessId p) const {
  return std::find(corrupted.begin(), corrupted.end(), p) != corrupted.end();
}

// ---------------------------------------------------------------------------
// BB
// ---------------------------------------------------------------------------

BbResult run_bb(const RunSpec& spec, ProcessId sender, Value sender_input,
                Adversary& adversary) {
  auto res = run_protocol<bb::BbProcess, BbResult>(
      spec, bb::BbProcess::total_rounds(spec.n, spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<bb::BbProcess>(ctx, sender, sender_input);
      },
      [](BbResult& r, ProcessId, const bb::BbProcess* p) {
        r.stats.push_back(p ? std::optional(p->stats()) : std::nullopt);
      });
  res.sender = sender;
  return res;
}

bool BbResult::all_decided() const { return stats_all_decided(stats); }

bool BbResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& s : stats) {
    if (!s) continue;
    if (!seen) {
      seen = s->decision;
    } else if (*seen != s->decision) {
      return false;
    }
  }
  return true;
}

Value BbResult::decision() const {
  for (const auto& s : stats) {
    if (s) return s->decision;
  }
  return kBottom;
}

std::uint32_t BbResult::nonsilent_leaders() const {
  std::uint32_t c = 0;
  for (const auto& s : stats) c += (s && s->led_nonsilent_phase) ? 1 : 0;
  return c;
}

bool BbResult::any_fallback() const {
  return std::any_of(stats.begin(), stats.end(), [](const auto& s) {
    return s && s->fallback_participant;
  });
}

// ---------------------------------------------------------------------------
// Weak BA
// ---------------------------------------------------------------------------

PredicateFactory always_valid_factory() {
  return [](const ThresholdFamily&, std::uint64_t) {
    return std::make_shared<const AlwaysValid>();
  };
}

WbaResult run_weak_ba(const RunSpec& spec,
                      const std::vector<WireValue>& inputs,
                      const PredicateFactory& predicate,
                      Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<wba::WeakBaProcess, WbaResult>(
      spec, wba::WeakBaProcess::total_rounds(spec.n, spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily& fam) {
        return std::make_unique<wba::WeakBaProcess>(
            ctx, predicate(fam, spec.instance), inputs[ctx.id]);
      },
      [](WbaResult& r, ProcessId, const wba::WeakBaProcess* p) {
        r.stats.push_back(p ? std::optional(p->stats()) : std::nullopt);
      });
}

bool WbaResult::all_decided() const { return stats_all_decided(stats); }

bool WbaResult::agreement() const {
  std::optional<WireValue> seen;
  for (const auto& s : stats) {
    if (!s) continue;
    if (!seen) {
      seen = s->decision;
    } else if (!(*seen == s->decision)) {
      return false;
    }
  }
  return true;
}

WireValue WbaResult::decision() const {
  for (const auto& s : stats) {
    if (s) return s->decision;
  }
  return bottom_value();
}

std::uint32_t WbaResult::nonsilent_leaders() const {
  std::uint32_t c = 0;
  for (const auto& s : stats) c += (s && s->led_nonsilent_phase) ? 1 : 0;
  return c;
}

bool WbaResult::any_fallback() const {
  return std::any_of(stats.begin(), stats.end(), [](const auto& s) {
    return s && s->fallback_participant;
  });
}

std::uint32_t WbaResult::help_reqs_sent() const {
  std::uint32_t c = 0;
  for (const auto& s : stats) c += (s && s->sent_help_req) ? 1 : 0;
  return c;
}

// ---------------------------------------------------------------------------
// Strong BA (Algorithm 5)
// ---------------------------------------------------------------------------

SbaResult run_strong_ba(const RunSpec& spec, const std::vector<Value>& inputs,
                        Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<sba::StrongBaProcess, SbaResult>(
      spec, sba::StrongBaProcess::total_rounds(spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<sba::StrongBaProcess>(ctx, inputs[ctx.id]);
      },
      [](SbaResult& r, ProcessId, const sba::StrongBaProcess* p) {
        r.stats.push_back(p ? std::optional(p->stats()) : std::nullopt);
      });
}

bool SbaResult::all_decided() const { return stats_all_decided(stats); }

bool SbaResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& s : stats) {
    if (!s) continue;
    if (!seen) {
      seen = s->decision;
    } else if (*seen != s->decision) {
      return false;
    }
  }
  return true;
}

Value SbaResult::decision() const {
  for (const auto& s : stats) {
    if (s) return s->decision;
  }
  return kBottom;
}

bool SbaResult::any_fallback() const {
  return std::any_of(stats.begin(), stats.end(), [](const auto& s) {
    return s && s->fallback_participant;
  });
}

bool SbaResult::all_fast() const {
  return std::all_of(stats.begin(), stats.end(), [](const auto& s) {
    return !s.has_value() || s->decided_fast;
  });
}

// ---------------------------------------------------------------------------
// A_fallback standalone + Dolev-Strong BB baseline
// ---------------------------------------------------------------------------

FallbackResult run_fallback_ba(const RunSpec& spec,
                               const std::vector<WireValue>& inputs,
                               Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<fallback::FallbackBaProcess, FallbackResult>(
      spec, fallback::FallbackBaProcess::total_rounds(spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<fallback::FallbackBaProcess>(ctx,
                                                             inputs[ctx.id]);
      },
      [](FallbackResult& r, ProcessId, const fallback::FallbackBaProcess* p) {
        r.decisions.push_back(p ? std::optional(p->decision()) : std::nullopt);
      });
}

bool FallbackResult::agreement() const {
  std::optional<WireValue> seen;
  for (const auto& d : decisions) {
    if (!d) continue;
    if (!seen) {
      seen = *d;
    } else if (!(*seen == *d)) {
      return false;
    }
  }
  return true;
}

WireValue FallbackResult::decision() const {
  for (const auto& d : decisions) {
    if (d) return *d;
  }
  return bottom_value();
}

DsBbResult run_ds_bb(const RunSpec& spec, ProcessId sender, Value sender_input,
                     Adversary& adversary) {
  return run_protocol<baseline::DolevStrongBbProcess, DsBbResult>(
      spec, baseline::DolevStrongBbProcess::total_rounds(spec.t), adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<baseline::DolevStrongBbProcess>(ctx, sender,
                                                                sender_input);
      },
      [](DsBbResult& r, ProcessId, const baseline::DolevStrongBbProcess* p) {
        r.decisions.push_back(p ? std::optional(p->decision()) : std::nullopt);
      });
}

bool DsBbResult::agreement() const {
  std::optional<Value> seen;
  for (const auto& d : decisions) {
    if (!d) continue;
    if (!seen) {
      seen = *d;
    } else if (*seen != *d) {
      return false;
    }
  }
  return true;
}

Value DsBbResult::decision() const {
  for (const auto& d : decisions) {
    if (d) return *d;
  }
  return kBottom;
}

// ---------------------------------------------------------------------------
// Interactive consistency
// ---------------------------------------------------------------------------

IcResult run_ic(const RunSpec& spec, const std::vector<Value>& inputs,
                Adversary& adversary) {
  MEWC_CHECK(inputs.size() == spec.n);
  return run_protocol<ic::InteractiveConsistencyProcess, IcResult>(
      spec, ic::InteractiveConsistencyProcess::total_rounds(spec.n, spec.t),
      adversary,
      [&](const ProtocolContext& ctx, const ThresholdFamily&) {
        return std::make_unique<ic::InteractiveConsistencyProcess>(
            ctx, inputs[ctx.id]);
      },
      [](IcResult& r, ProcessId, const ic::InteractiveConsistencyProcess* p) {
        if (p != nullptr && p->stats().decided) {
          r.vectors.push_back(p->stats().vector);
        } else {
          r.vectors.push_back(std::nullopt);
        }
      });
}

bool IcResult::all_decided() const {
  for (ProcessId p = 0; p < vectors.size(); ++p) {
    if (!is_corrupted(p) && !vectors[p].has_value()) return false;
  }
  return true;
}

bool IcResult::agreement() const {
  const std::vector<Value>* seen = nullptr;
  for (const auto& v : vectors) {
    if (!v) continue;
    if (seen == nullptr) {
      seen = &*v;
    } else if (*seen != *v) {
      return false;
    }
  }
  return true;
}

std::vector<Value> IcResult::vector() const {
  for (const auto& v : vectors) {
    if (v) return *v;
  }
  return {};
}

}  // namespace mewc::harness
