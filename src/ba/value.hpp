// WireValue: a protocol value together with its self-certifying provenance.
//
// In the paper, the objects processes agree on are not bare values but
// signed values: Byzantine Broadcast decides <v>_sender (a value signed by
// the designated sender), and the idk quorum certificate itself acts as a
// decidable value meaning "the sender never spoke" (Section 5). WireValue
// models that: a value plus an optional individual signature or threshold
// certificate. Every protocol signature (votes, commits, finalizes) binds
// the *content digest* of the full WireValue, so a Byzantine process cannot
// re-attach different provenance to a certified value — exactly as in the
// paper, where the certified object is the signed value itself.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "crypto/digest.hpp"
#include "crypto/keys.hpp"
#include "crypto/threshold.hpp"

namespace mewc {

enum class Provenance : std::uint8_t {
  kPlain = 0,      // bare value (standalone BA inputs)
  kSigned = 1,     // value accompanied by one individual signature
  kCertified = 2,  // value accompanied by a threshold certificate
};

struct WireValue {
  Value value;
  Provenance prov = Provenance::kPlain;
  std::uint64_t aux = 0;  // predicate-specific context (e.g. idk phase j)
  std::optional<Signature> sig;     // present iff prov == kSigned
  std::optional<ThresholdSig> cert; // present iff prov == kCertified

  [[nodiscard]] static WireValue plain(Value v) {
    WireValue w;
    w.value = v;
    return w;
  }

  [[nodiscard]] static WireValue signed_by(Value v, Signature s) {
    WireValue w;
    w.value = v;
    w.prov = Provenance::kSigned;
    w.sig = s;
    return w;
  }

  [[nodiscard]] static WireValue certified(Value v, ThresholdSig c,
                                           std::uint64_t aux = 0) {
    WireValue w;
    w.value = v;
    w.prov = Provenance::kCertified;
    w.aux = aux;
    w.cert = c;
    return w;
  }

  [[nodiscard]] bool is_bottom() const { return value.is_bottom(); }

  /// Wire size in words: the value plus one word per attachment.
  [[nodiscard]] std::size_t words() const {
    return 1 + (sig ? 1 : 0) + (cert ? 1 : 0);
  }

  /// Logical signatures carried: a threshold certificate stands for k of
  /// them (see Payload::logical_signatures).
  [[nodiscard]] std::size_t logical_signatures() const {
    return (sig ? 1 : 0) + (cert ? cert->k : 0);
  }

  /// Commits to the full content, attachments included, so protocol
  /// signatures bind the exact object being agreed on. Attachments are
  /// bound by their *identity* — who signed which digest, at which
  /// threshold — not by their tag bytes: every backend's tag is a
  /// deterministic function of exactly that identity (and is verified
  /// before the value is adopted), so this pins the same attestation
  /// while keeping the digest identical across crypto backends. That
  /// invariance is what the ideal <-> real differential harness checks.
  [[nodiscard]] Digest content_digest() const {
    DigestBuilder b("mewc.wire_value");
    b.field(value)
        .field(static_cast<std::uint64_t>(prov))
        .field(aux)
        .field(sig ? sig->digest.bits : 0)
        .field(sig ? sig->signer : kNoProcess)
        .field(cert ? cert->digest.bits : 0)
        .field(cert ? cert->k : 0);
    return b.done();
  }

  friend bool operator==(const WireValue& a, const WireValue& b) {
    return a.value == b.value && a.prov == b.prov && a.aux == b.aux &&
           a.sig == b.sig &&
           ((!a.cert && !b.cert) || (a.cert && b.cert && *a.cert == *b.cert));
  }
  friend bool operator!=(const WireValue& a, const WireValue& b) {
    return !(a == b);
  }
};

/// The distinguished bottom output (paper's "⊥ is allowed" in weak BA).
[[nodiscard]] inline WireValue bottom_value() {
  return WireValue::plain(kBottom);
}

}  // namespace mewc
