#include "ba/strong_ba/strong_ba.hpp"

#include "check/coverage.hpp"
#include "common/check.hpp"
#include "crypto/signer_set.hpp"
#include "net/arena.hpp"

namespace mewc::sba {

StrongBaProcess::StrongBaProcess(const ProtocolContext& ctx, Value input)
    : ctx_(ctx), input_(input), bu_decision_(input), ds_(ctx) {
  MEWC_CHECK_MSG(input.raw <= 1, "Algorithm 5 is binary BA");
}

void StrongBaProcess::decide_now(Value v, bool fast, Round round) {
  if (decided_) return;  // decide at most once (Lemma 29)
  decided_ = true;
  decision_ = v;
  stats_.decided = true;
  stats_.decision = v;
  stats_.decided_fast = fast;
  stats_.decided_round = round;
}

PayloadPtr StrongBaProcess::make_fallback_msg() const {
  auto msg = pool::make<FallbackMsg>();
  if (decided_ && decide_proof_) {
    msg->has_decision = true;
    msg->value = decision_;
    msg->proof = *decide_proof_;
  } else if (bu_proof_) {
    msg->has_decision = true;
    msg->value = bu_decision_;
    msg->proof = *bu_proof_;
  }
  return msg;
}

void StrongBaProcess::on_send(Round r, Outbox& out) {
  switch (r) {
    case 1: {  // line 2: everyone sends its input to the leader
      MEWC_COV(alg5_line2_send_input);
      auto msg = pool::make<InputMsg>();
      msg->value = input_;
      msg->partial =
          ctx_.partial_sign(ctx_.t + 1, propose_digest(ctx_.instance, input_));
      out.send(kLeader, msg);
      break;
    }
    case 2: {  // lines 3-6: leader batches a (t+1)-certificate
      if (ctx_.id != kLeader) break;
      for (int v = 0; v < 2; ++v) {
        if (input_partials_[v].size() >= ctx_.t + 1) {
          MEWC_COV(alg5_line5_propose_cert);
          auto qc = ctx_.scheme(ctx_.t + 1).combine(input_partials_[v]);
          MEWC_CHECK_MSG(qc.has_value(), "verified inputs must combine");
          auto msg = pool::make<ProposeCertMsg>();
          msg->value = Value(static_cast<std::uint64_t>(v));
          msg->qc = *qc;
          out.broadcast(msg);
          proposed_ = msg->value;
          break;
        }
      }
      break;
    }
    case 3: {  // lines 7-8: decide vote on the certified value
      if (decide_vote_value_) {
        MEWC_COV(alg5_line8_decide_vote);
        auto msg = pool::make<DecideVoteMsg>();
        msg->value = *decide_vote_value_;
        msg->partial = ctx_.partial_sign(
            ctx_.n, decide_digest(ctx_.instance, *decide_vote_value_));
        out.send(kLeader, msg);
        sent_decide_vote_ = true;
      }
      break;
    }
    case 4: {  // lines 9-12: leader batches the (n, n)-certificate
      if (ctx_.id != kLeader || !proposed_) break;
      if (decide_partials_.size() >= ctx_.n) {
        MEWC_COV(alg5_line11_decide_cert);
        auto qc = ctx_.scheme(ctx_.n).combine(decide_partials_);
        MEWC_CHECK_MSG(qc.has_value(), "verified decides must combine");
        auto msg = pool::make<DecideCertMsg>();
        msg->value = *proposed_;
        msg->qc = *qc;
        out.broadcast(msg);
      }
      break;
    }
    case 5: {  // lines 16-18: the undecided raise the alarm
      if (!decided_) {
        MEWC_COV(alg5_line17_alarm);
        out.broadcast(make_fallback_msg());
        fallback_broadcast_ = true;
        heard_fallback_ = true;
      } else {
        // Line 16 negative: fast-decided processes stay silent.
        MEWC_COV(alg5_line16_silent_decided);
      }
      break;
    }
    case 6: {  // lines 25-27: echo once, attaching decision and proof
      if (echo_scheduled_ && !fallback_broadcast_) {
        MEWC_COV(alg5_line26_echo);
        out.broadcast(make_fallback_msg());
        fallback_broadcast_ = true;
        echo_scheduled_ = false;
      }
      break;
    }
    default:
      if (r >= ds_first_round() && r <= last_round()) {
        ds_.on_send(r - (ds_first_round() - 1), out);
      }
      break;
  }
}

void StrongBaProcess::on_receive(Round r, std::span<const Message> inbox) {
  switch (r) {
    case 1: {  // leader collects inputs (line 4)
      if (ctx_.id != kLeader) break;
      SignerSet seen(ctx_.n);
      for (const Message& m : inbox) {
        const auto* in = payload_cast<InputMsg>(m.body);
        if (in == nullptr || in->value.raw > 1) continue;
        if (in->partial.k != ctx_.t + 1 || in->partial.signer != m.from) {
          continue;
        }
        if (in->partial.digest != propose_digest(ctx_.instance, in->value)) {
          continue;
        }
        if (!ctx_.scheme(ctx_.t + 1).verify_partial(in->partial)) continue;
        if (!seen.insert(in->partial.signer)) continue;
        input_partials_[in->value.raw].push_back(in->partial);
      }
      break;
    }
    case 2: {  // accept the first valid propose certificate (line 7)
      for (const Message& m : inbox) {
        if (m.from != kLeader) continue;
        const auto* p = payload_cast<ProposeCertMsg>(m.body);
        if (p == nullptr || p->value.raw > 1) continue;
        if (p->qc.k != ctx_.t + 1 ||
            p->qc.digest != propose_digest(ctx_.instance, p->value) ||
            !ctx_.scheme(ctx_.t + 1).verify(p->qc)) {
          continue;
        }
        MEWC_COV(alg5_line7_accept_propose_cert);
        decide_vote_value_ = p->value;
        break;  // sign a decide for at most one proposal
      }
      break;
    }
    case 3: {  // leader collects decide votes (line 10)
      if (ctx_.id != kLeader || !proposed_) break;
      SignerSet seen(ctx_.n);
      const Digest want = decide_digest(ctx_.instance, *proposed_);
      for (const Message& m : inbox) {
        const auto* d = payload_cast<DecideVoteMsg>(m.body);
        if (d == nullptr) continue;
        if (d->partial.k != ctx_.n || d->partial.signer != m.from) continue;
        if (d->partial.digest != want) continue;
        if (!ctx_.scheme(ctx_.n).verify_partial(d->partial)) continue;
        if (!seen.insert(d->partial.signer)) continue;
        decide_partials_.push_back(d->partial);
      }
      break;
    }
    case 4: {  // lines 13-15: a decide certificate decides
      for (const Message& m : inbox) {
        if (m.from != kLeader) continue;
        const auto* d = payload_cast<DecideCertMsg>(m.body);
        if (d == nullptr || d->value.raw > 1) continue;
        if (d->qc.k != ctx_.n ||
            d->qc.digest != decide_digest(ctx_.instance, d->value) ||
            !ctx_.scheme(ctx_.n).verify(d->qc)) {
          continue;
        }
        MEWC_COV(alg5_line14_fast_decide);
        decide_proof_ = d->qc;
        decide_now(d->value, /*fast=*/true, r);
        break;
      }
      break;
    }
    case 5:
    case 6: {  // lines 19-27: the 2δ safety window
      for (const Message& m : inbox) {
        const auto* f = payload_cast<FallbackMsg>(m.body);
        if (f == nullptr) continue;
        if (!heard_fallback_ && !fallback_broadcast_) {
          MEWC_COV(alg5_line20_echo_scheduled);
          echo_scheduled_ = true;
        }
        heard_fallback_ = true;
        if (f->has_decision && !decided_ && f->value.raw <= 1 &&
            f->proof.k == ctx_.n &&
            f->proof.digest == decide_digest(ctx_.instance, f->value) &&
            ctx_.scheme(ctx_.n).verify(f->proof)) {
          MEWC_COV(alg5_line23_adopt_bu);
          bu_decision_ = f->value;  // lines 22-24
          bu_proof_ = f->proof;
        }
      }
      if (r == 6 && heard_fallback_) {
        // Window over: run A_fallback with bu_decision (line 28).
        MEWC_COV(alg5_line28_enter_fallback);
        if (decided_) bu_decision_ = decision_;  // line 19
        ds_.set_input(WireValue::plain(bu_decision_));
        ds_.activate();
        stats_.fallback_participant = true;
      }
      break;
    }
    default: {
      if (r >= ds_first_round() && r <= last_round()) {
        ds_.on_receive(r - (ds_first_round() - 1), inbox);
        if (r == last_round() && !decided_) {
          // lines 29-30, coerced into the binary domain so a Byzantine
          // value majority can never push the decision outside {0, 1}.
          MEWC_COV(alg5_line30_slow_decide);
          const WireValue fallback_val = ds_.decide();
          const Value v =
              fallback_val.value.raw <= 1 ? fallback_val.value : Value(0);
          decide_now(v, /*fast=*/false, r);
        }
      }
      break;
    }
  }
}

}  // namespace mewc::sba
