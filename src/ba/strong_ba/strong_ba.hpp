// Strong binary BA with O(n) words in the failure-free case (paper
// Section 7, Algorithm 5).
//
// A single leader collects all initial values; with binary inputs and
// n = 2t+1 some value has t+1 supporters, so the leader can always batch a
// (t+1, n)-threshold propose certificate. It then collects decide
// signatures from ALL n processes into an (n, n)-threshold decide
// certificate; any process holding it decides. Any process that does not
// decide broadcasts a fallback message, funneling everyone into A_fallback
// after the 2δ safety window. Failure-free: 4 leader rounds, O(n) words and
// zero fallback traffic (Lemma 8); otherwise O(fallback) = quadratic in the
// paper (cubic for our substituted Dolev-Strong; DESIGN.md SUB-1).
//
// Round schedule: 1 inputs→leader, 2 propose cert, 3 decide votes→leader,
// 4 decide cert, 5 decide-or-fallback broadcast, 6 echo/adopt window,
// 7..7+t A_fallback.
#pragma once

#include <optional>

#include "ba/context.hpp"
#include "ba/fallback/dolev_strong.hpp"
#include "net/payload.hpp"
#include "sim/process.hpp"

namespace mewc::sba {

[[nodiscard]] inline Digest propose_digest(std::uint64_t instance, Value v) {
  return DigestBuilder("sba.propose").field(instance).field(v).done();
}

[[nodiscard]] inline Digest decide_digest(std::uint64_t instance, Value v) {
  return DigestBuilder("sba.decide").field(instance).field(v).done();
}

/// <v_i>_pi to the leader (line 2): the input plus a (t+1)-scheme partial.
struct InputMsg final : public Payload {
  Value value;
  PartialSig partial;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] std::size_t logical_signatures() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "sba.input"; }
};

/// <propose, v, QC_propose(v)> from the leader (line 6).
struct ProposeCertMsg final : public Payload {
  Value value;
  ThresholdSig qc;  // k = t+1

  [[nodiscard]] std::size_t words() const override { return 1 + qc.words(); }
  [[nodiscard]] std::size_t logical_signatures() const override { return qc.k; }
  [[nodiscard]] const char* kind() const override { return "sba.propose_cert"; }
};

/// <decide, v>_pi to the leader (line 8): an (n)-scheme partial.
struct DecideVoteMsg final : public Payload {
  Value value;
  PartialSig partial;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] std::size_t logical_signatures() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "sba.decide_vote"; }
};

/// <decide, v, QC_decide(v)> from the leader (line 12).
struct DecideCertMsg final : public Payload {
  Value value;
  ThresholdSig qc;  // k = n

  [[nodiscard]] std::size_t words() const override { return 1 + qc.words(); }
  [[nodiscard]] std::size_t logical_signatures() const override { return qc.k; }
  [[nodiscard]] const char* kind() const override { return "sba.decide_cert"; }
};

/// <fallback, v, proof> (lines 17 and 26).
struct FallbackMsg final : public Payload {
  bool has_decision = false;
  Value value;
  ThresholdSig proof;  // k = n, meaningful iff has_decision

  [[nodiscard]] std::size_t words() const override {
    return 1 + (has_decision ? proof.words() : 0);
  }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return has_decision ? proof.k : 0;
  }
  [[nodiscard]] const char* kind() const override { return "sba.fallback"; }
};

struct SbaStats {
  bool decided = false;
  Value decision = kBottom;
  bool decided_fast = false;  // via the decide certificate (line 14)
  bool fallback_participant = false;
  Round decided_round = 0;    // early-stopping metric
};

class StrongBaProcess final : public IProcess {
 public:
  /// `input` must be binary (0 or 1).
  StrongBaProcess(const ProtocolContext& ctx, Value input);

  [[nodiscard]] static Round total_rounds(std::uint32_t t) {
    return 6 + fallback::DolevStrongEngine::rounds(t);
  }

  void on_send(Round r, Outbox& out) override;
  void on_receive(Round r, std::span<const Message> inbox) override;

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] Value decision() const { return decision_; }
  [[nodiscard]] const SbaStats& stats() const { return stats_; }

  static constexpr ProcessId kLeader = 0;  // the paper's p1

 private:
  [[nodiscard]] Round ds_first_round() const { return 7; }
  [[nodiscard]] Round last_round() const { return total_rounds(ctx_.t); }

  void decide_now(Value v, bool fast, Round round);
  [[nodiscard]] PayloadPtr make_fallback_msg() const;

  ProtocolContext ctx_;
  Value input_;

  bool decided_ = false;
  Value decision_ = kBottom;
  std::optional<ThresholdSig> decide_proof_;

  // Leader scratch.
  std::vector<PartialSig> input_partials_[2];   // by binary value
  std::optional<Value> proposed_;
  std::vector<PartialSig> decide_partials_;

  // Voter scratch.
  bool sent_decide_vote_ = false;
  std::optional<Value> decide_vote_value_;

  // Fallback cascade.
  bool fallback_broadcast_ = false;
  bool echo_scheduled_ = false;
  bool heard_fallback_ = false;
  Value bu_decision_ = kBottom;
  std::optional<ThresholdSig> bu_proof_;

  fallback::DolevStrongEngine ds_;
  SbaStats stats_;
};

}  // namespace mewc::sba
