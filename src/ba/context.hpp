// Per-process protocol context: identity, system parameters, run instance
// tag, and crypto capabilities. Shared by every protocol implementation.
#pragma once

#include "common/types.hpp"
#include "crypto/family.hpp"

namespace mewc {

struct ProtocolContext {
  ProcessId id = kNoProcess;
  std::uint32_t n = 0;
  std::uint32_t t = 0;
  std::uint64_t instance = 0;  // run nonce; domain-separates digests per run
  const ThresholdFamily* crypto = nullptr;
  const KeyBundle* keys = nullptr;

  [[nodiscard]] const Pki& pki() const { return crypto->pki(); }

  [[nodiscard]] Signature sign(Digest d) const { return keys->signer().sign(d); }

  [[nodiscard]] PartialSig partial_sign(std::uint32_t k, Digest d) const {
    return keys->share(k).partial_sign(d);
  }

  [[nodiscard]] const ThresholdScheme& scheme(std::uint32_t k) const {
    return crypto->scheme(k);
  }

  /// ceil((n+t+1)/2), the Section 6 quorum.
  [[nodiscard]] std::uint32_t quorum() const { return commit_quorum(n, t); }
};

}  // namespace mewc
