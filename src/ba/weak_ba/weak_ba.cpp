#include "ba/weak_ba/weak_ba.hpp"

#include <algorithm>

#include "check/coverage.hpp"
#include "common/check.hpp"
#include "crypto/signer_set.hpp"
#include "net/arena.hpp"

namespace mewc::wba {

WeakBaProcess::WeakBaProcess(const ProtocolContext& ctx,
                             std::shared_ptr<const ValidityPredicate> predicate,
                             WireValue input)
    : ctx_(ctx),
      predicate_(std::move(predicate)),
      vi_(input),
      bu_decision_(input),
      ds_(ctx) {
  MEWC_CHECK(predicate_ != nullptr);
}

bool WeakBaProcess::verify_commit_qc(const WireValue& v, std::uint64_t level,
                                     const ThresholdSig& qc) const {
  if (qc.k != ctx_.quorum()) return false;
  if (qc.digest != commit_digest(ctx_.instance, level, v.content_digest())) {
    return false;
  }
  return ctx_.scheme(ctx_.quorum()).verify(qc);
}

bool WeakBaProcess::verify_finalize_qc(const WireValue& v,
                                       std::uint64_t phase,
                                       const ThresholdSig& qc) const {
  if (qc.k != ctx_.quorum()) return false;
  if (qc.digest != finalize_digest(ctx_.instance, phase, v.content_digest())) {
    return false;
  }
  return ctx_.scheme(ctx_.quorum()).verify(qc);
}

void WeakBaProcess::decide_now(const WireValue& v, std::uint64_t phase,
                               const ThresholdSig& proof, Round round) {
  if (decided_) return;  // correct processes decide at most once (Lemma 23)
  decided_ = true;
  decision_ = v;
  decide_proof_ = proof;
  decide_phase_ = phase;
  stats_.decided = true;
  stats_.decision = v;
  stats_.decided_phase = phase;
  stats_.decided_round = round;
}

// ---------------------------------------------------------------------------
// Algorithm 4: one phase, five rounds.
// ---------------------------------------------------------------------------

void WeakBaProcess::phase_send(std::uint64_t j, Round local, Outbox& out) {
  const ProcessId leader = leader_of(j, ctx_.n);
  switch (local) {
    case 1: {  // line 31-32: undecided leader proposes
      ph_ = PhaseScratch{};
      if (leader == ctx_.id && !decided_) {
        MEWC_COV(alg4_line31_propose);
        auto msg = pool::make<ProposeMsg>();
        msg->phase = j;
        msg->value = vi_;
        out.broadcast(msg);
        stats_.led_nonsilent_phase = true;
      } else if (leader == ctx_.id) {
        // Line 31 negative: a decided leader leads a silent phase.
        MEWC_COV(alg4_line31_silent_decided);
      }
      break;
    }
    case 2: {  // lines 33-36: vote or report the existing commit
      if (ph_.will_vote) {
        auto msg = pool::make<VoteMsg>();
        msg->phase = j;
        msg->partial = ctx_.partial_sign(
            ctx_.quorum(),
            commit_digest(ctx_.instance, j, ph_.proposal.content_digest()));
        out.send(leader, msg);
      } else if (ph_.will_send_commit_info) {
        auto msg = pool::make<CommitMsg>();
        msg->phase = j;
        msg->value = commit_;
        msg->level = commit_level_;
        msg->qc = commit_proof_;
        out.send(leader, msg);
      }
      break;
    }
    case 3: {  // lines 37-42: leader echoes a commit or forms a fresh QC
      if (leader != ctx_.id) break;
      if (ph_.best_commit_info) {
        MEWC_COV(alg4_line37_leader_echo_commit);
        auto msg = pool::make<CommitMsg>(*ph_.best_commit_info);
        msg->phase = j;
        out.broadcast(msg);
        ph_.leader_broadcast_commit = true;
        ph_.leader_commit_value = msg->value;
        ph_.leader_commit_level = msg->level;
      } else if (ph_.votes.size() >= ctx_.quorum()) {
        MEWC_COV(alg4_line41_leader_fresh_qc);
        auto qc = ctx_.scheme(ctx_.quorum()).combine(ph_.votes);
        MEWC_CHECK_MSG(qc.has_value(), "verified votes must combine");
        auto msg = pool::make<CommitMsg>();
        msg->phase = j;
        msg->value = ph_.proposal;  // leader's own proposal
        msg->level = j;
        msg->qc = *qc;
        out.broadcast(msg);
        ph_.leader_broadcast_commit = true;
        ph_.leader_commit_value = msg->value;
        ph_.leader_commit_level = j;
      }
      break;
    }
    case 4: {  // line 44: decide vote to the leader
      if (ph_.will_send_decide) {
        auto msg = pool::make<DecideMsg>();
        msg->phase = j;
        msg->partial = ph_.decide_partial;
        out.send(leader, msg);
      }
      break;
    }
    case 5: {  // lines 48-51: leader finalizes
      if (leader != ctx_.id) break;
      if (ph_.decides.size() >= ctx_.quorum()) {
        MEWC_COV(alg4_line50_finalize);
        auto qc = ctx_.scheme(ctx_.quorum()).combine(ph_.decides);
        MEWC_CHECK_MSG(qc.has_value(), "verified decides must combine");
        auto msg = pool::make<FinalizedMsg>();
        msg->phase = j;
        msg->value = ph_.leader_commit_value;
        msg->qc = *qc;
        out.broadcast(msg);
      }
      break;
    }
    default:
      break;
  }
}

void WeakBaProcess::phase_receive(std::uint64_t j, Round local,
                                  std::span<const Message> inbox) {
  const ProcessId leader = leader_of(j, ctx_.n);
  switch (local) {
    case 1: {  // record the first proposal from the leader (line 33)
      for (const Message& m : inbox) {
        if (m.from != leader) continue;
        const auto* p = payload_cast<ProposeMsg>(m.body);
        if (p == nullptr || p->phase != j) continue;
        if (ph_.saw_proposal) break;  // at most one vote per phase
        ph_.saw_proposal = true;
        ph_.proposal = p->value;
        if (!has_commit_ && validate(p->value)) {
          MEWC_COV(alg4_line34_vote_scheduled);
          ph_.will_vote = true;  // line 34
        } else if (has_commit_) {
          MEWC_COV(alg4_line36_report_commit);
          ph_.will_send_commit_info = true;  // line 36
        }
        break;
      }
      break;
    }
    case 2: {  // leader collects votes and commit reports (lines 38-41)
      if (leader != ctx_.id) break;
      SignerSet voters(ctx_.n);
      const Digest want = ph_.saw_proposal
                              ? commit_digest(ctx_.instance, j,
                                              ph_.proposal.content_digest())
                              : Digest{};
      for (const Message& m : inbox) {
        if (const auto* v = payload_cast<VoteMsg>(m.body)) {
          if (v->phase != j || !ph_.saw_proposal) continue;
          if (v->partial.k != ctx_.quorum() || v->partial.digest != want) {
            continue;
          }
          if (v->partial.signer != m.from) continue;
          if (!ctx_.scheme(ctx_.quorum()).verify_partial(v->partial)) continue;
          if (!voters.insert(v->partial.signer)) continue;
          MEWC_COV(alg4_line38_vote_collected);
          ph_.votes.push_back(v->partial);
        } else if (const auto* c = payload_cast<CommitMsg>(m.body)) {
          if (c->phase != j) continue;
          if (c->level == 0 || c->level > j) {  // no future certs
            MEWC_COV(alg4_line39_reject_commit_report);
            continue;
          }
          if (!verify_commit_qc(c->value, c->level, c->qc)) {
            MEWC_COV(alg4_line39_reject_commit_report);
            continue;
          }
          if (!ph_.best_commit_info ||
              c->level > ph_.best_commit_info->level) {
            MEWC_COV(alg4_line39_commit_report_best);
            ph_.best_commit_info = *c;  // line 39: maximal level wins
          }
        }
      }
      break;
    }
    case 3: {  // lines 43-47: adopt the leader's commit, prepare decide vote
      for (const Message& m : inbox) {
        if (m.from != leader) continue;
        const auto* c = payload_cast<CommitMsg>(m.body);
        if (c == nullptr || c->phase != j) continue;
        if (c->level == 0 || c->level > j) {
          MEWC_COV(alg4_line43_reject_commit);
          continue;
        }
        if (c->level < commit_level_) {  // line 43: level >= ours
          MEWC_COV(alg4_line43_reject_commit);
          continue;
        }
        if (!verify_commit_qc(c->value, c->level, c->qc)) {
          MEWC_COV(alg4_line43_reject_commit);
          continue;
        }
        MEWC_COV(alg4_line43_adopt_commit);
        ph_.will_send_decide = true;
        ph_.decide_partial = ctx_.partial_sign(
            ctx_.quorum(),
            finalize_digest(ctx_.instance, j, c->value.content_digest()));
        has_commit_ = true;  // lines 45-47
        commit_ = c->value;
        commit_proof_ = c->qc;
        commit_level_ = c->level;
        break;  // act on at most one commit certificate per phase
      }
      break;
    }
    case 4: {  // leader collects decide votes (line 49)
      if (leader != ctx_.id || !ph_.leader_broadcast_commit) break;
      SignerSet sgn(ctx_.n);
      const Digest want = finalize_digest(
          ctx_.instance, j, ph_.leader_commit_value.content_digest());
      for (const Message& m : inbox) {
        const auto* d = payload_cast<DecideMsg>(m.body);
        if (d == nullptr || d->phase != j) continue;
        if (d->partial.k != ctx_.quorum() || d->partial.digest != want) {
          continue;
        }
        if (d->partial.signer != m.from) continue;
        if (!ctx_.scheme(ctx_.quorum()).verify_partial(d->partial)) continue;
        if (!sgn.insert(d->partial.signer)) continue;
        MEWC_COV(alg4_line49_decide_collected);
        ph_.decides.push_back(d->partial);
      }
      break;
    }
    case 5: {  // lines 52-54: a finalize certificate decides
      for (const Message& m : inbox) {
        if (m.from != leader) continue;
        const auto* f = payload_cast<FinalizedMsg>(m.body);
        if (f == nullptr || f->phase != j) continue;
        if (!verify_finalize_qc(f->value, j, f->qc)) {
          MEWC_COV(alg4_line52_reject_finalize);
          continue;
        }
        MEWC_COV(alg4_line53_decide_finalize);
        decide_now(f->value, j, f->qc, static_cast<Round>(5 * j));
        break;
      }
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Algorithm 3 tail: help round, fallback certificate, safety window, and
// the A_fallback execution.
// ---------------------------------------------------------------------------

PayloadPtr WeakBaProcess::make_fallback_msg() const {
  auto msg = pool::make<FallbackMsg>();
  msg->fallback_qc = fallback_cert_;
  if (decided_ && decide_proof_) {
    msg->has_decision = true;
    msg->value = decision_;
    msg->proof_phase = decide_phase_;
    msg->decide_proof = *decide_proof_;
  } else if (bu_proof_) {
    msg->has_decision = true;
    msg->value = bu_decision_;
    msg->proof_phase = bu_proof_phase_;
    msg->decide_proof = *bu_proof_;
  }
  return msg;
}

void WeakBaProcess::note_fallback_cert(const ThresholdSig& qc) {
  if (!has_fallback_cert_) {
    MEWC_COV(alg3_line17_note_fallback_cert);
    has_fallback_cert_ = true;
    fallback_cert_ = qc;
    if (!fallback_broadcast_) echo_scheduled_ = true;  // line 21-23
  }
}

void WeakBaProcess::tail_send(Round r, Outbox& out) {
  if (r == help_req_round()) {  // Alg 3, lines 5-6
    if (!decided_) {
      MEWC_COV(alg3_line5_help_request);
      auto msg = pool::make<HelpReqMsg>();
      msg->partial = ctx_.partial_sign(ctx_.t + 1,
                                       help_req_digest(ctx_.instance));
      out.broadcast(msg);
      sent_help_req_ = true;
      stats_.sent_help_req = true;
    } else {
      // Line 5 negative: decided processes keep the help round silent.
      MEWC_COV(alg3_line5_silent_decided);
    }
    return;
  }
  if (r == help_reply_round()) {  // Alg 3, lines 7-12
    if (decided_ && decide_proof_) {
      for (const PartialSig& req : help_req_partials_) {
        if (req.signer == ctx_.id) continue;
        MEWC_COV(alg3_line8_help_reply);
        auto msg = pool::make<HelpMsg>();
        msg->value = decision_;
        msg->proof_phase = decide_phase_;
        msg->decide_proof = *decide_proof_;
        out.send(req.signer, msg);
      }
    }
    if (help_req_partials_.size() >= ctx_.t + 1) {
      MEWC_COV(alg3_line10_fallback_cert_combine);
      auto qc = ctx_.scheme(ctx_.t + 1).combine(help_req_partials_);
      MEWC_CHECK_MSG(qc.has_value(), "verified help_reqs must combine");
      has_fallback_cert_ = true;
      fallback_cert_ = *qc;
      fallback_broadcast_ = true;
      sent_decision_fallback_ = decided_;
      out.broadcast(make_fallback_msg());
    }
    return;
  }
  if (r == adopt_round() || r == echo_round()) {
    if (echo_scheduled_ && !fallback_broadcast_) {
      // Alg 3 lines 21-23: echo the certificate once, with my decision and
      // proof attached if I have them.
      MEWC_COV(alg3_line21_fallback_echo);
      fallback_broadcast_ = true;
      sent_decision_fallback_ = decided_;
      echo_scheduled_ = false;
      out.broadcast(make_fallback_msg());
    } else if (has_fallback_cert_ && decided_ && !sent_decision_fallback_) {
      // NOTE-2: I decided after my (decision-less) certificate broadcast —
      // Lemma 19 needs every correct process to learn my decision during
      // the safety window, so send it now.
      MEWC_COV(alg3_line22_late_decision_rebroadcast);
      sent_decision_fallback_ = true;
      out.broadcast(make_fallback_msg());
    }
    return;
  }
  if (r >= ds_first_round() && r <= last_round()) {
    ds_.on_send(r - (ds_first_round() - 1), out);
  }
}

void WeakBaProcess::tail_receive(Round r, std::span<const Message> inbox) {
  if (r == help_req_round()) {
    // Collect distinct valid help_req partials (anyone may batch them).
    SignerSet seen(ctx_.n);
    const Digest want = help_req_digest(ctx_.instance);
    for (const Message& m : inbox) {
      const auto* h = payload_cast<HelpReqMsg>(m.body);
      if (h == nullptr) continue;
      if (h->partial.k != ctx_.t + 1 || h->partial.digest != want) continue;
      if (h->partial.signer != m.from) continue;
      if (!ctx_.scheme(ctx_.t + 1).verify_partial(h->partial)) continue;
      if (!seen.insert(h->partial.signer)) continue;
      help_req_partials_.push_back(h->partial);
    }
    return;
  }

  if (r == help_reply_round() || r == adopt_round() || r == echo_round()) {
    for (const Message& m : inbox) {
      if (const auto* h = payload_cast<HelpMsg>(m.body)) {
        // Alg 3, lines 13-14 — processed in the paper's round 3 ONLY
        // (= our help_reply_round). A help accepted later could mint a
        // decision too late to re-broadcast inside the window (NOTE-2).
        if (r != help_reply_round()) continue;
        if (decided_) continue;
        if (!validate(h->value)) {
          MEWC_COV(alg3_line13_reject_help);
          continue;
        }
        if (!verify_finalize_qc(h->value, h->proof_phase, h->decide_proof)) {
          MEWC_COV(alg3_line13_reject_help);
          continue;
        }
        MEWC_COV(alg3_line13_adopt_help_decision);
        decide_now(h->value, h->proof_phase, h->decide_proof, r);
      } else if (const auto* f = payload_cast<FallbackMsg>(m.body)) {
        // Alg 3, lines 16-23.
        if (f->fallback_qc.k != ctx_.t + 1 ||
            f->fallback_qc.digest != help_req_digest(ctx_.instance) ||
            !ctx_.scheme(ctx_.t + 1).verify(f->fallback_qc)) {
          MEWC_COV(alg3_line16_reject_fallback_cert);
          continue;
        }
        note_fallback_cert(f->fallback_qc);
        if (f->has_decision && !decided_ && validate(f->value) &&
            verify_finalize_qc(f->value, f->proof_phase, f->decide_proof)) {
          MEWC_COV(alg3_line19_adopt_bu);
          bu_decision_ = f->value;  // lines 18-20
          bu_proof_ = f->decide_proof;
          bu_proof_phase_ = f->proof_phase;
        }
      }
    }
    if (r == echo_round() && has_fallback_cert_) {
      // Safety window over: enter A_fallback with bu_decision (line 24).
      MEWC_COV(alg3_line24_enter_fallback);
      if (decided_) bu_decision_ = decision_;  // line 15
      ds_.set_input(bu_decision_);
      ds_.activate();
      stats_.fallback_participant = true;
    }
    return;
  }

  if (r >= ds_first_round() && r <= last_round()) {
    ds_.on_receive(r - (ds_first_round() - 1), inbox);
    if (r == last_round() && !decided_) {
      // Alg 3, lines 25-29.
      if (ds_.active()) {
        const WireValue fallback_val = ds_.decide();
        decided_ = true;
        if (validate(fallback_val)) {
          MEWC_COV(alg3_line26_fallback_decide);
          decision_ = fallback_val;
        } else {
          MEWC_COV(alg3_line28_fallback_decide_bottom);
          decision_ = bottom_value();
        }
        stats_.decided = true;
        stats_.decision = decision_;
        stats_.decided_round = r;
      } else {
        // Provably unreachable (Lemma 21); if an adversary strategy ever
        // finds a hole, surface it as a visible liveness failure.
        decided_ = true;
        decision_ = bottom_value();
        stats_.decided = false;
      }
    }
  }
}

void WeakBaProcess::on_send(Round r, Outbox& out) {
  if (r <= 5 * ctx_.n) {
    phase_send(phase_of(r), phase_local(r), out);
  } else {
    tail_send(r, out);
  }
}

void WeakBaProcess::on_receive(Round r, std::span<const Message> inbox) {
  if (r <= 5 * ctx_.n) {
    phase_receive(phase_of(r), phase_local(r), inbox);
  } else {
    tail_receive(r, inbox);
  }
}

}  // namespace mewc::wba
