// Wire messages and certificate digests of the adaptive weak BA
// (Algorithms 3 and 4). All certificates bind the run instance, the phase
// (commit level) and the full value content, so signatures can never be
// replayed across runs, phases, or re-attached provenance.
#pragma once

#include "ba/value.hpp"
#include "net/payload.hpp"

namespace mewc::wba {

/// Digest of the commit vote in phase `level` on a value: the
/// (ceil((n+t+1)/2), n)-threshold certificate over it is QC_commit(v)
/// (Algorithm 4, line 41).
[[nodiscard]] inline Digest commit_digest(std::uint64_t instance,
                                          std::uint64_t level,
                                          Digest value_content) {
  return DigestBuilder("wba.commit")
      .field(instance)
      .field(level)
      .field(value_content.bits)
      .done();
}

/// Digest of the decide vote in phase `phase`: the threshold certificate
/// over it is QC_finalized(v) (Algorithm 4, line 50).
[[nodiscard]] inline Digest finalize_digest(std::uint64_t instance,
                                            std::uint64_t phase,
                                            Digest value_content) {
  return DigestBuilder("wba.finalize")
      .field(instance)
      .field(phase)
      .field(value_content.bits)
      .done();
}

/// Digest of <help_req>: the (t+1, n)-threshold certificate over it is
/// QC_fallback (Algorithm 3, line 10).
[[nodiscard]] inline Digest help_req_digest(std::uint64_t instance) {
  return DigestBuilder("wba.help_req").field(instance).done();
}

/// <propose, v, j> from the phase leader (Algorithm 4, line 32).
struct ProposeMsg final : public Payload {
  std::uint64_t phase = 0;
  WireValue value;

  [[nodiscard]] std::size_t words() const override { return value.words(); }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures();
  }
  [[nodiscard]] const char* kind() const override { return "wba.propose"; }
};

/// <vote, v, j> to the leader: a partial signature under the commit quorum
/// scheme on commit_digest(instance, j, v) (Algorithm 4, line 34).
struct VoteMsg final : public Payload {
  std::uint64_t phase = 0;
  PartialSig partial;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] std::size_t logical_signatures() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "wba.vote"; }
};

/// <commit, w, QC_commit(w), level, j>, both as a process's reply to a
/// proposal when it is already committed (line 36) and as the leader's
/// broadcast (lines 39 and 42). Receivers act only on copies arriving from
/// the phase leader in the commit round.
struct CommitMsg final : public Payload {
  std::uint64_t phase = 0;
  WireValue value;
  std::uint64_t level = 0;  // phase in which the certificate was formed
  ThresholdSig qc;

  [[nodiscard]] std::size_t words() const override {
    return value.words() + qc.words();
  }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures() + qc.k;
  }
  [[nodiscard]] const char* kind() const override { return "wba.commit"; }
};

/// <decide, v, j> to the leader: a partial signature on
/// finalize_digest(instance, j, v) (Algorithm 4, line 44).
struct DecideMsg final : public Payload {
  std::uint64_t phase = 0;
  PartialSig partial;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] std::size_t logical_signatures() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "wba.decide"; }
};

/// <finalized, v, QC_finalized(v), j> from the leader (line 51).
struct FinalizedMsg final : public Payload {
  std::uint64_t phase = 0;
  WireValue value;
  ThresholdSig qc;

  [[nodiscard]] std::size_t words() const override {
    return value.words() + qc.words();
  }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures() + qc.k;
  }
  [[nodiscard]] const char* kind() const override { return "wba.finalized"; }
};

/// <help_req>_pi broadcast by processes that are still undecided after the
/// phases (Algorithm 3, line 6). Carries the (t+1)-scheme partial signature
/// from which fallback certificates are batched.
struct HelpReqMsg final : public Payload {
  PartialSig partial;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] std::size_t logical_signatures() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "wba.help_req"; }
};

/// <help, decision, decide_proof> unicast back to a requester (line 8).
struct HelpMsg final : public Payload {
  WireValue value;
  std::uint64_t proof_phase = 0;
  ThresholdSig decide_proof;

  [[nodiscard]] std::size_t words() const override {
    return value.words() + decide_proof.words();
  }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures() + decide_proof.k;
  }
  [[nodiscard]] const char* kind() const override { return "wba.help"; }
};

/// <fallback, QC_fallback, decision, proof> (lines 11 and 22): announces
/// that the fallback must run; carries the sender's decision and proof when
/// it has one.
struct FallbackMsg final : public Payload {
  ThresholdSig fallback_qc;  // (t+1, n) certificate over help_req_digest
  bool has_decision = false;
  WireValue value;           // meaningful iff has_decision
  std::uint64_t proof_phase = 0;
  ThresholdSig decide_proof;

  [[nodiscard]] std::size_t words() const override {
    return fallback_qc.words() +
           (has_decision ? value.words() + decide_proof.words() : 0);
  }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return fallback_qc.k +
           (has_decision ? value.logical_signatures() + decide_proof.k : 0);
  }
  [[nodiscard]] const char* kind() const override { return "wba.fallback"; }
};

}  // namespace mewc::wba
