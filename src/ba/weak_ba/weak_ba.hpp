// Adaptive weak Byzantine Agreement (paper Section 6, Algorithms 3 + 4).
//
// n leader-rotating phases of five rounds each, built on the paper's key
// observation: quorum certificates of ceil((n+t+1)/2) signatures intersect
// in a correct process even at n = 2t+1, and commit levels make at most one
// finalize certificate formable across all phases (Lemma 15). Phases led by
// already-decided correct processes are silent, which is what makes the
// word complexity O(n(f+1)) in the adaptive regime (Lemma 16 / Section
// 6.1). When too many processes fail for quorums to form, a help round and
// a fallback certificate funnel everyone into A_fallback (Section 6's
// Momose-Ren black box; DESIGN.md SUB-1).
//
// Round schedule (global, 1-based):
//   phases:    rounds 1 .. 5n                (phase j = rounds 5(j-1)+1..5j)
//   help_req:  round 5n+1                    (Alg 3 round 1)
//   help/cert: round 5n+2                    (Alg 3 round 2)
//   adopt:     round 5n+3                    (Alg 3 round 3 + safety window)
//   echo:      round 5n+4                    (2nd half of the 2δ window)
//   fallback:  rounds 5n+5 .. 5n+4+(t+1)     (A_fallback with δ' = 2δ)
//
// The paper's wall-clock 2δ safety window and doubled fallback rounds exist
// to overlap misaligned starts (Lemmas 17/18); in a round-lockstep simulator
// starts are aligned by construction, and the window is represented by the
// adopt/echo rounds (DESIGN.md SUB-3).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ba/context.hpp"
#include "ba/fallback/dolev_strong.hpp"
#include "ba/validity/predicate.hpp"
#include "ba/weak_ba/messages.hpp"
#include "sim/process.hpp"

namespace mewc::wba {

/// Per-process observable outcome, for tests and experiment harnesses.
struct WbaStats {
  bool decided = false;
  WireValue decision = bottom_value();
  std::uint64_t decided_phase = 0;  // 0: not decided during the phases
  Round decided_round = 0;          // early-stopping metric: first round
                                    // with a final decision
  bool led_nonsilent_phase = false;
  bool sent_help_req = false;
  bool fallback_participant = false;
};

class WeakBaProcess final : public IProcess {
 public:
  /// `predicate` is the unique-validity predicate (Definition 3); `input`
  /// must satisfy it (the paper's precondition that correct processes
  /// propose valid values).
  WeakBaProcess(const ProtocolContext& ctx,
                std::shared_ptr<const ValidityPredicate> predicate,
                WireValue input);

  [[nodiscard]] static Round total_rounds(std::uint32_t n, std::uint32_t t) {
    return 5 * n + 4 + fallback::DolevStrongEngine::rounds(t);
  }

  void on_send(Round r, Outbox& out) override;
  void on_receive(Round r, std::span<const Message> inbox) override;

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] const WireValue& decision() const { return decision_; }
  [[nodiscard]] const WbaStats& stats() const { return stats_; }

  /// Finalize proof of the decision, when it came from the phase path or a
  /// help/fallback message (absent after a bare fallback decision).
  [[nodiscard]] const std::optional<ThresholdSig>& decide_proof() const {
    return decide_proof_;
  }

  /// The phase leader rotation: phase j in 1..n is led by process (j-1)%n.
  [[nodiscard]] static ProcessId leader_of(std::uint64_t phase,
                                           std::uint32_t n) {
    return static_cast<ProcessId>((phase - 1) % n);
  }

 private:
  // Round-schedule geometry.
  [[nodiscard]] Round help_req_round() const { return 5 * ctx_.n + 1; }
  [[nodiscard]] Round help_reply_round() const { return 5 * ctx_.n + 2; }
  [[nodiscard]] Round adopt_round() const { return 5 * ctx_.n + 3; }
  [[nodiscard]] Round echo_round() const { return 5 * ctx_.n + 4; }
  [[nodiscard]] Round ds_first_round() const { return 5 * ctx_.n + 5; }
  [[nodiscard]] Round last_round() const {
    return total_rounds(ctx_.n, ctx_.t);
  }
  /// Phase number (1-based) of a phase-window round, and the local round
  /// 1..5 within it.
  [[nodiscard]] static std::uint64_t phase_of(Round r) { return (r - 1) / 5 + 1; }
  [[nodiscard]] static Round phase_local(Round r) { return (r - 1) % 5 + 1; }

  [[nodiscard]] bool validate(const WireValue& v) const {
    return predicate_->validate(v);
  }
  [[nodiscard]] bool verify_commit_qc(const WireValue& v, std::uint64_t level,
                                      const ThresholdSig& qc) const;
  [[nodiscard]] bool verify_finalize_qc(const WireValue& v,
                                        std::uint64_t phase,
                                        const ThresholdSig& qc) const;

  void decide_now(const WireValue& v, std::uint64_t phase,
                  const ThresholdSig& proof, Round round);

  // Phase sub-steps (Algorithm 4).
  void phase_send(std::uint64_t j, Round local, Outbox& out);
  void phase_receive(std::uint64_t j, Round local,
                     std::span<const Message> inbox);

  // Post-phase sub-steps (Algorithm 3, lines 5-29).
  void tail_send(Round r, Outbox& out);
  void tail_receive(Round r, std::span<const Message> inbox);
  [[nodiscard]] PayloadPtr make_fallback_msg() const;
  void note_fallback_cert(const ThresholdSig& qc);

  ProtocolContext ctx_;
  std::shared_ptr<const ValidityPredicate> predicate_;

  // Algorithm 3 state.
  WireValue vi_;
  bool decided_ = false;
  WireValue decision_ = bottom_value();
  std::optional<ThresholdSig> decide_proof_;
  std::uint64_t decide_phase_ = 0;

  // Commit state (Algorithm 4, carried across phases).
  bool has_commit_ = false;
  WireValue commit_ = bottom_value();
  ThresholdSig commit_proof_;
  std::uint64_t commit_level_ = 0;

  // Per-phase scratch (reset at each phase boundary).
  struct PhaseScratch {
    bool saw_proposal = false;
    WireValue proposal;
    bool will_vote = false;
    bool will_send_commit_info = false;
    std::vector<PartialSig> votes;                     // leader only
    std::optional<CommitMsg> best_commit_info;          // leader only
    bool leader_broadcast_commit = false;               // leader only
    WireValue leader_commit_value;                      // leader only
    std::uint64_t leader_commit_level = 0;              // leader only
    std::vector<PartialSig> decides;                    // leader only
    bool will_send_decide = false;
    PartialSig decide_partial;
  };
  PhaseScratch ph_;

  // Fallback cascade state (Algorithm 3 tail).
  std::vector<PartialSig> help_req_partials_;  // distinct help_req signers
  bool sent_help_req_ = false;
  bool has_fallback_cert_ = false;
  ThresholdSig fallback_cert_;
  bool fallback_broadcast_ = false;   // I already broadcast a fallback msg
  bool echo_scheduled_ = false;       // first heard a cert; echo next round
  // NOTE-2 (faithful completion, see weak_ba.cpp): whether a fallback
  // message carrying my decision has gone out. A process that decides
  // AFTER broadcasting a decision-less fallback certificate must
  // re-broadcast once inside the window, or Lemma 19's "they receive v
  // from p" premise fails and a Byzantine-disclosed finalize certificate
  // could strand a lone decider against the fallback majority.
  bool sent_decision_fallback_ = false;
  WireValue bu_decision_ = bottom_value();
  std::optional<ThresholdSig> bu_proof_;
  std::uint64_t bu_proof_phase_ = 0;

  fallback::DolevStrongEngine ds_;
  WbaStats stats_;
};

}  // namespace mewc::wba
