// Non-adaptive baselines for the Table 1 comparisons (DESIGN.md S9).
//
//  * DolevStrongBbProcess — the classic authenticated Byzantine Broadcast
//    (Dolev-Strong 1983): a single sender instance relayed for t+1 rounds.
//    Correct for any f <= t but never cheaper than Θ(n^2) messages, even
//    failure-free: the non-adaptive comparator for the paper's O(n(f+1)) BB.
//
//  * AlwaysFallbackBaProcess — strong BA that skips every adaptive
//    mechanism and runs A_fallback unconditionally: the non-adaptive
//    comparator for weak BA / Algorithm 5 (an alias of FallbackBaProcess,
//    named for what it represents in experiments).
#pragma once

#include "ba/fallback/fallback_process.hpp"

namespace mewc::baseline {

class DolevStrongBbProcess final : public IProcess {
 public:
  DolevStrongBbProcess(const ProtocolContext& ctx, ProcessId sender,
                       Value input)
      : sender_(sender), engine_(ctx) {
    engine_.activate();
    engine_.set_broadcaster(ctx.id == sender);
    if (ctx.id == sender) engine_.set_input(WireValue::plain(input));
  }

  [[nodiscard]] static Round total_rounds(std::uint32_t t) {
    return fallback::DolevStrongEngine::rounds(t);
  }

  void on_send(Round r, Outbox& out) override { engine_.on_send(r, out); }
  void on_receive(Round r, std::span<const Message> inbox) override {
    engine_.on_receive(r, inbox);
  }

  /// The broadcast outcome: the sender's value, or ⊥ for a Byzantine sender
  /// caught equivocating or staying silent.
  [[nodiscard]] Value decision() const {
    return engine_.slot(sender_).value;
  }

 private:
  ProcessId sender_;
  fallback::DolevStrongEngine engine_;
};

using AlwaysFallbackBaProcess = fallback::FallbackBaProcess;

}  // namespace mewc::baseline
