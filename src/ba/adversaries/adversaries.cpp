#include "ba/adversaries/adversaries.hpp"

#include <algorithm>

#include "ba/bb/bb.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/validity/predicate.hpp"
#include "ba/weak_ba/messages.hpp"
#include "crypto/signer_set.hpp"
#include "net/arena.hpp"

namespace mewc::adv {

// ---------------------------------------------------------------------------
// CrashAdversary
// ---------------------------------------------------------------------------

void CrashAdversary::setup(AdversaryControl& ctrl) {
  if (from_round_ <= 1) {
    for (ProcessId v : victims_) ctrl.corrupt(v);
  }
}

void CrashAdversary::pre_round(Round r, AdversaryControl& ctrl) {
  if (r == from_round_ && from_round_ > 1) {
    for (ProcessId v : victims_) ctrl.corrupt(v);
  }
}

// ---------------------------------------------------------------------------
// AdaptiveLeaderCrash
// ---------------------------------------------------------------------------

void AdaptiveLeaderCrash::pre_round(Round r, AdversaryControl& ctrl) {
  if (r < first_ || budget_ == 0) return;
  const Round offset = r - first_;
  if (offset % len_ != 0) return;  // not a phase boundary
  const std::uint64_t phase = offset / len_ + 1;
  if (phase > phases_) return;
  const auto leader = static_cast<ProcessId>((phase - 1) % ctrl.n());
  if (ctrl.is_corrupted(leader)) return;
  if (ctrl.corrupt(leader)) --budget_;
}

// ---------------------------------------------------------------------------
// BbEquivocatingSender
// ---------------------------------------------------------------------------

void BbEquivocatingSender::setup(AdversaryControl& ctrl) {
  ctrl.corrupt(sender_);
}

void BbEquivocatingSender::act(Round r, AdversaryControl& ctrl) {
  if (r != 1 || mode_ == SenderMode::kSilent) return;
  const auto& key = ctrl.bundle(sender_).signer();

  auto signed_value = [&](Value v) {
    auto msg = pool::make<bb::SenderValueMsg>();
    msg->value =
        WireValue::signed_by(v, key.sign(bb_sender_digest(instance_, v)));
    return msg;
  };

  if (mode_ == SenderMode::kEquivocate) {
    const auto m0 = signed_value(v0_);
    const auto m1 = signed_value(v1_);
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      ctrl.send_as(sender_, p, (p % 2 == 0) ? PayloadPtr(m0) : PayloadPtr(m1));
    }
  } else {  // kPartial
    const auto m0 = signed_value(v0_);
    for (ProcessId p = 0; p < std::min(reach_, ctrl.n()); ++p) {
      ctrl.send_as(sender_, p, m0);
    }
  }
}

// ---------------------------------------------------------------------------
// WbaCertSplit
// ---------------------------------------------------------------------------

void WbaCertSplit::setup(AdversaryControl& ctrl) {
  leader_ = static_cast<ProcessId>((phase_ - 1) % ctrl.n());
  ctrl.corrupt(leader_);
  // Extra corrupted voters to help reach the quorum.
  for (ProcessId p = 0; extra_ > 0 && p < ctrl.n(); ++p) {
    if (p == leader_ || ctrl.is_corrupted(p)) continue;
    if (ctrl.corrupted_count() >= ctrl.t()) break;
    if (ctrl.corrupt(p)) --extra_;
  }
}

void WbaCertSplit::act(Round r, AdversaryControl& ctrl) {
  const auto& fam = ctrl.crypto();
  const std::uint32_t quorum = commit_quorum(ctrl.n(), ctrl.t());
  const Digest commit_d =
      wba::commit_digest(instance_, phase_, value_.content_digest());
  const Digest finalize_d =
      wba::finalize_digest(instance_, phase_, value_.content_digest());

  if (r == phase_round(1)) {
    auto msg = pool::make<wba::ProposeMsg>();
    msg->phase = phase_;
    msg->value = value_;
    ctrl.broadcast_as(leader_, msg);
    return;
  }

  if (r == phase_round(2)) {
    // Capture correct votes off the wire and add corrupted shares.
    SignerSet seen(ctrl.n());
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* v = payload_cast<wba::VoteMsg>(m.body);
      if (v == nullptr || v->phase != phase_) continue;
      if (v->partial.digest != commit_d || v->partial.k != quorum) continue;
      if (!fam.scheme(quorum).verify_partial(v->partial)) continue;
      if (!seen.insert(v->partial.signer)) continue;
      votes_.push_back(v->partial);
    }
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      if (!ctrl.is_corrupted(p) || seen.contains(p)) continue;
      seen.insert(p);
      votes_.push_back(ctrl.bundle(p).share(quorum).partial_sign(commit_d));
    }
    return;
  }

  if (r == phase_round(3)) {
    if (votes_.size() < quorum) return;
    commit_qc_ = fam.scheme(quorum).combine(votes_);
    if (!commit_qc_) return;
    auto msg = pool::make<wba::CommitMsg>();
    msg->phase = phase_;
    msg->value = value_;
    msg->level = phase_;
    msg->qc = *commit_qc_;
    ctrl.broadcast_as(leader_, msg);  // everyone commits...
    return;
  }

  if (r == phase_round(4)) {
    if (!commit_qc_) return;
    SignerSet seen(ctrl.n());
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* d = payload_cast<wba::DecideMsg>(m.body);
      if (d == nullptr || d->phase != phase_) continue;
      if (d->partial.digest != finalize_d || d->partial.k != quorum) continue;
      if (!fam.scheme(quorum).verify_partial(d->partial)) continue;
      if (!seen.insert(d->partial.signer)) continue;
      decides_.push_back(d->partial);
    }
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      if (!ctrl.is_corrupted(p) || seen.contains(p)) continue;
      seen.insert(p);
      decides_.push_back(
          ctrl.bundle(p).share(quorum).partial_sign(finalize_d));
    }
    return;
  }

  if (r == phase_round(5)) {
    // ...but only a chosen few learn the finalize certificate.
    if (decides_.size() < quorum) return;
    finalize_qc_ = fam.scheme(quorum).combine(decides_);
    if (!finalize_qc_) return;
    if (poison_help_) return;  // withhold entirely; disclose at help time
    auto msg = pool::make<wba::FinalizedMsg>();
    msg->phase = phase_;
    msg->value = value_;
    msg->qc = *finalize_qc_;
    std::uint32_t sent = 0;
    for (ProcessId p = 0; p < ctrl.n() && sent < finalize_recipients_; ++p) {
      if (ctrl.is_corrupted(p)) continue;
      ctrl.send_as(leader_, p, msg);
      ++sent;
    }
    return;
  }

  // NOTE-2 attack: disclose the withheld finalize proof through a help
  // message to exactly one correct process, timed so that its fallback
  // certificate (broadcast this same round) carried no decision.
  if (poison_help_ && finalize_qc_ &&
      r == static_cast<Round>(5 * ctrl.n() + 2)) {
    auto msg = pool::make<wba::HelpMsg>();
    msg->value = value_;
    msg->proof_phase = phase_;
    msg->decide_proof = *finalize_qc_;
    for (ProcessId p = ctrl.n(); p-- > 0;) {
      if (ctrl.is_corrupted(p)) continue;
      ctrl.send_as(leader_, p, msg);
      break;  // one victim only
    }
  }
}

// ---------------------------------------------------------------------------
// WbaTwoPhaseConflict
// ---------------------------------------------------------------------------

void WbaTwoPhaseConflict::setup(AdversaryControl& ctrl) {
  leader1_ = static_cast<ProcessId>((phase_ - 1) % ctrl.n());
  leader2_ = static_cast<ProcessId>(phase_ % ctrl.n());
  ctrl.corrupt(leader1_);
  ctrl.corrupt(leader2_);
  for (ProcessId p = 0; extra_ > 0 && p < ctrl.n(); ++p) {
    if (ctrl.is_corrupted(p)) continue;
    if (ctrl.corrupted_count() >= ctrl.t()) break;
    if (ctrl.corrupt(p)) --extra_;
  }
}

void WbaTwoPhaseConflict::harvest_votes(AdversaryControl& ctrl,
                                        std::uint64_t phase,
                                        const WireValue& value,
                                        std::vector<PartialSig>& into) {
  const auto& fam = ctrl.crypto();
  const std::uint32_t quorum = commit_quorum(ctrl.n(), ctrl.t());
  const Digest d = wba::commit_digest(instance_, phase, value.content_digest());
  SignerSet seen(ctrl.n());
  for (const PartialSig& p : into) seen.insert(p.signer);
  for (const Message& m : ctrl.posted_this_round()) {
    const auto* v = payload_cast<wba::VoteMsg>(m.body);
    if (v == nullptr || v->phase != phase) continue;
    if (v->partial.digest != d || v->partial.k != quorum) continue;
    if (!fam.scheme(quorum).verify_partial(v->partial)) continue;
    if (!seen.insert(v->partial.signer)) continue;
    into.push_back(v->partial);
  }
  for (ProcessId p = 0; p < ctrl.n(); ++p) {
    if (!ctrl.is_corrupted(p) || seen.contains(p)) continue;
    seen.insert(p);
    into.push_back(ctrl.bundle(p).share(quorum).partial_sign(d));
  }
}

void WbaTwoPhaseConflict::act(Round r, AdversaryControl& ctrl) {
  const auto& fam = ctrl.crypto();
  const std::uint32_t quorum = commit_quorum(ctrl.n(), ctrl.t());

  // --- Phase `phase_`: commit v, reveal to a chosen few, never finalize.
  if (r == phase_round(phase_, 1)) {
    auto msg = pool::make<wba::ProposeMsg>();
    msg->phase = phase_;
    msg->value = v_;
    ctrl.broadcast_as(leader1_, msg);
  } else if (r == phase_round(phase_, 2)) {
    harvest_votes(ctrl, phase_, v_, votes_v_);
  } else if (r == phase_round(phase_, 3)) {
    if (votes_v_.size() < quorum) return;
    commit_v_ = fam.scheme(quorum).combine(votes_v_);
    if (!commit_v_) return;
    auto msg = pool::make<wba::CommitMsg>();
    msg->phase = phase_;
    msg->value = v_;
    msg->level = phase_;
    msg->qc = *commit_v_;
    std::uint32_t sent = 0;
    for (ProcessId p = 0; p < ctrl.n() && sent < reveal_; ++p) {
      if (ctrl.is_corrupted(p)) continue;
      ctrl.send_as(leader1_, p, msg);
      ++sent;
    }
  }

  // --- Phase `phase_+1`: drive w through commit and finalize.
  const std::uint64_t p2 = phase_ + 1;
  if (r == phase_round(p2, 1)) {
    auto msg = pool::make<wba::ProposeMsg>();
    msg->phase = p2;
    msg->value = w_;
    ctrl.broadcast_as(leader2_, msg);
  } else if (r == phase_round(p2, 2)) {
    harvest_votes(ctrl, p2, w_, votes_w_);
  } else if (r == phase_round(p2, 3)) {
    if (votes_w_.size() < quorum) return;
    commit_w_ = fam.scheme(quorum).combine(votes_w_);
    if (!commit_w_) return;
    auto msg = pool::make<wba::CommitMsg>();
    msg->phase = p2;
    msg->value = w_;
    msg->level = p2;
    msg->qc = *commit_w_;
    ctrl.broadcast_as(leader2_, msg);
  } else if (r == phase_round(p2, 4)) {
    if (!commit_w_) return;
    const Digest d =
        wba::finalize_digest(instance_, p2, w_.content_digest());
    SignerSet seen(ctrl.n());
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* dm = payload_cast<wba::DecideMsg>(m.body);
      if (dm == nullptr || dm->phase != p2) continue;
      if (dm->partial.digest != d || dm->partial.k != quorum) continue;
      if (!fam.scheme(quorum).verify_partial(dm->partial)) continue;
      if (!seen.insert(dm->partial.signer)) continue;
      decides_w_.push_back(dm->partial);
    }
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      if (!ctrl.is_corrupted(p) || seen.contains(p)) continue;
      seen.insert(p);
      decides_w_.push_back(ctrl.bundle(p).share(quorum).partial_sign(d));
    }
  } else if (r == phase_round(p2, 5)) {
    if (decides_w_.size() < quorum) return;
    auto qc = fam.scheme(quorum).combine(decides_w_);
    if (!qc) return;
    finalized_w_ = true;
    auto msg = pool::make<wba::FinalizedMsg>();
    msg->phase = p2;
    msg->value = w_;
    msg->qc = *qc;
    ctrl.broadcast_as(leader2_, msg);
  }
}

// ---------------------------------------------------------------------------
// WbaHelpSpam
// ---------------------------------------------------------------------------

void WbaHelpSpam::setup(AdversaryControl& ctrl) {
  for (ProcessId p = ctrl.n(); p-- > 0 && corrupted_.size() < corruptions_;) {
    if (ctrl.corrupt(p)) corrupted_.push_back(p);
  }
}

void WbaHelpSpam::act(Round r, AdversaryControl& ctrl) {
  const auto& fam = ctrl.crypto();
  const std::uint32_t k = ctrl.t() + 1;
  const Digest d = wba::help_req_digest(instance_);

  if (r == help_round_) {
    // Covert mode keeps the corrupted partials off the wire; they are
    // re-signed from the key bundles at mint time instead, so only the
    // adversary ever assembles t+1 partials.
    if (!covert_) {
      for (ProcessId p : corrupted_) {
        auto msg = pool::make<wba::HelpReqMsg>();
        msg->partial = ctrl.bundle(p).share(k).partial_sign(d);
        ctrl.broadcast_as(p, msg);
      }
    }
    // Steal any correct help_req partials off the wire (rushing view) for
    // the certificate minted next round.
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* h = payload_cast<wba::HelpReqMsg>(m.body);
      if (h == nullptr || h->partial.digest != d) continue;
      if (!fam.scheme(k).verify_partial(h->partial)) continue;
      stolen_.push_back(h->partial);
    }
    return;
  }

  if (r == help_round_ + 1 && form_certificate_) {
    // Mint a fallback certificate from corrupted partials plus the stolen
    // correct ones, and reveal it to a chosen few.
    std::vector<PartialSig> partials = stolen_;
    for (ProcessId p : corrupted_) {
      partials.push_back(ctrl.bundle(p).share(k).partial_sign(d));
    }
    auto qc = fam.scheme(k).combine(partials);
    if (!qc) return;
    auto msg = pool::make<wba::FallbackMsg>();
    msg->fallback_qc = *qc;
    std::uint32_t sent = 0;
    for (ProcessId p = 0; p < ctrl.n() && sent < cert_recipients_; ++p) {
      if (ctrl.is_corrupted(p)) continue;
      ctrl.send_as(corrupted_.front(), p, msg);
      ++sent;
    }
  }
}

// ---------------------------------------------------------------------------
// BbPartialRelay
// ---------------------------------------------------------------------------

void BbPartialRelay::setup(AdversaryControl& ctrl) {
  leader_ = static_cast<ProcessId>((phase_ - 1) % ctrl.n());
  ctrl.corrupt(leader_);
}

void BbPartialRelay::act(Round r, AdversaryControl& ctrl) {
  const auto& fam = ctrl.crypto();
  const std::uint32_t k = ctrl.t() + 1;

  if (r == phase_round(1)) {
    auto msg = pool::make<bb::HelpReqMsg>();
    msg->phase = phase_;
    ctrl.broadcast_as(leader_, msg);
    return;
  }

  if (r == phase_round(2)) {
    // Collect the correct processes' idk partials off the wire, plus our own.
    SignerSet seen(ctrl.n());
    const Digest want = bb_idk_digest(instance_, phase_);
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* idk = payload_cast<bb::IdkMsg>(m.body);
      if (idk == nullptr || idk->phase != phase_) continue;
      if (idk->partial.digest != want) continue;
      if (!fam.scheme(k).verify_partial(idk->partial)) continue;
      if (!seen.insert(idk->partial.signer)) continue;
      idk_partials_.push_back(idk->partial);
    }
    if (!seen.contains(leader_)) {
      idk_partials_.push_back(ctrl.bundle(leader_).share(k).partial_sign(want));
    }
    return;
  }

  if (r == phase_round(3)) {
    if (idk_partials_.size() < k) return;
    auto qc = fam.scheme(k).combine(idk_partials_);
    if (!qc) return;
    auto msg = pool::make<bb::LeaderValueMsg>();
    msg->phase = phase_;
    msg->value = WireValue::certified(kIdkValue, *qc, /*aux=*/phase_);
    // Reveal the certificate only to the highest-id correct processes.
    std::uint32_t sent = 0;
    for (ProcessId p = ctrl.n(); p-- > 0 && sent < reach_;) {
      if (ctrl.is_corrupted(p)) continue;
      ctrl.send_as(leader_, p, msg);
      ++sent;
    }
  }
}

// ---------------------------------------------------------------------------
// Alg5Withhold
// ---------------------------------------------------------------------------

void Alg5Withhold::setup(AdversaryControl& ctrl) {
  ctrl.corrupt(sba::StrongBaProcess::kLeader);
}

void Alg5Withhold::act(Round r, AdversaryControl& ctrl) {
  if (mode_ == Alg5Mode::kSilent) return;
  const auto& fam = ctrl.crypto();
  const ProcessId leader = sba::StrongBaProcess::kLeader;

  if (r == 1) {
    // Capture everyone's input partials; add the leader's own on both
    // values (a Byzantine process signs whatever helps).
    SignerSet seen[2] = {SignerSet(ctrl.n()), SignerSet(ctrl.n())};
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* in = payload_cast<sba::InputMsg>(m.body);
      if (in == nullptr || in->value.raw > 1) continue;
      if (in->partial.k != ctrl.t() + 1) continue;
      if (!fam.scheme(ctrl.t() + 1).verify_partial(in->partial)) continue;
      if (!seen[in->value.raw].insert(in->partial.signer)) continue;
      inputs_[in->value.raw].push_back(in->partial);
    }
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      if (!ctrl.is_corrupted(p)) continue;
      for (int v = 0; v < 2; ++v) {
        if (seen[v].contains(p)) continue;
        seen[v].insert(p);
        inputs_[v].push_back(ctrl.bundle(p).share(ctrl.t() + 1).partial_sign(
            sba::propose_digest(instance_, Value(v))));
      }
    }
    return;
  }

  if (r == 2) {
    auto cert_for = [&](int v) -> std::optional<sba::ProposeCertMsg> {
      if (inputs_[v].size() < ctrl.t() + 1) return std::nullopt;
      auto qc = fam.scheme(ctrl.t() + 1).combine(inputs_[v]);
      if (!qc) return std::nullopt;
      sba::ProposeCertMsg msg;
      msg.value = Value(static_cast<std::uint64_t>(v));
      msg.qc = *qc;
      return msg;
    };
    if (mode_ == Alg5Mode::kSplitPropose) {
      const auto c0 = cert_for(0);
      const auto c1 = cert_for(1);
      if (c0 && c1) {
        for (ProcessId p = 0; p < ctrl.n(); ++p) {
          auto msg = pool::make<sba::ProposeCertMsg>(p % 2 == 0 ? *c0
                                                                      : *c1);
          ctrl.send_as(leader, p, msg);
        }
      } else if (c0 || c1) {
        ctrl.broadcast_as(leader,
                          pool::make<sba::ProposeCertMsg>(c0 ? *c0 : *c1));
        proposed_ = (c0 ? c0 : c1)->value;
      }
    } else {  // kHideDecide: behave honestly here
      for (int v = 0; v < 2; ++v) {
        if (auto c = cert_for(v)) {
          ctrl.broadcast_as(leader, pool::make<sba::ProposeCertMsg>(*c));
          proposed_ = c->value;
          break;
        }
      }
    }
    return;
  }

  if (r == 3 && proposed_) {
    SignerSet seen(ctrl.n());
    const Digest want = sba::decide_digest(instance_, *proposed_);
    for (const Message& m : ctrl.posted_this_round()) {
      const auto* d = payload_cast<sba::DecideVoteMsg>(m.body);
      if (d == nullptr || d->partial.k != ctrl.n()) continue;
      if (d->partial.digest != want) continue;
      if (!fam.scheme(ctrl.n()).verify_partial(d->partial)) continue;
      if (!seen.insert(d->partial.signer)) continue;
      decide_partials_.push_back(d->partial);
    }
    for (ProcessId p = 0; p < ctrl.n(); ++p) {
      if (!ctrl.is_corrupted(p) || seen.contains(p)) continue;
      seen.insert(p);
      decide_partials_.push_back(
          ctrl.bundle(p).share(ctrl.n()).partial_sign(want));
    }
    return;
  }

  if (r == 4 && mode_ == Alg5Mode::kHideDecide && proposed_) {
    if (decide_partials_.size() < ctrl.n()) return;
    auto qc = fam.scheme(ctrl.n()).combine(decide_partials_);
    if (!qc) return;
    auto msg = pool::make<sba::DecideCertMsg>();
    msg->value = *proposed_;
    msg->qc = *qc;
    std::uint32_t sent = 0;
    for (ProcessId p = 0; p < ctrl.n() && sent < reach_; ++p) {
      if (ctrl.is_corrupted(p)) continue;
      ctrl.send_as(leader, p, msg);
      ++sent;
    }
  }
}

}  // namespace mewc::adv
