#include "ba/adversaries/fuzzer.hpp"

#include "ba/bb/bb.hpp"
#include "ba/fallback/dolev_strong.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/validity/predicate.hpp"
#include "ba/weak_ba/messages.hpp"
#include "crypto/multisig.hpp"
#include "net/arena.hpp"

namespace mewc::adv {

namespace {

/// A payload type no protocol knows; receivers must treat it as noise.
struct JunkMsg final : Payload {
  std::uint64_t blob = 0;
  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "fuzz.junk"; }
};

}  // namespace

void Fuzzer::setup(AdversaryControl& ctrl) {
  const std::uint32_t n = ctrl.n();
  for (std::uint32_t i = 1; corrupted_.size() < corruptions_ && i <= n; ++i) {
    const auto pid = static_cast<ProcessId>(i % n);
    if (pid == spare_ || ctrl.is_corrupted(pid)) continue;
    if (ctrl.corrupt(pid)) corrupted_.push_back(pid);
  }
}

PayloadPtr Fuzzer::random_payload(Round r, AdversaryControl& ctrl,
                                  ProcessId as) {
  const std::uint32_t n = ctrl.n();
  const std::uint32_t t = ctrl.t();
  const auto& fam = ctrl.crypto();

  auto rnd_value = [&] { return Value(rng_.below(6)); };
  auto rnd_digest = [&] { return Digest{rng_.next()}; };
  auto rnd_phase = [&] { return rng_.below(n) + 1; };
  auto rnd_k = [&] {
    const std::uint32_t ks[] = {1, t, t + 1, commit_quorum(n, t), n, n + 3};
    return ks[rng_.below(6)];
  };
  auto rnd_wire = [&] {
    switch (rng_.below(3)) {
      case 0:
        return WireValue::plain(rnd_value());
      case 1: {
        Signature s;
        s.signer = static_cast<ProcessId>(rng_.below(n + 2));
        s.digest = rnd_digest();
        s.tag = rng_.next();
        return WireValue::signed_by(rnd_value(), s);
      }
      default: {
        ThresholdSig c;
        c.digest = rnd_digest();
        c.k = rnd_k();
        c.tag = rng_.next();
        return WireValue::certified(rng_.chance(1, 2) ? kIdkValue : rnd_value(),
                                    c, rng_.below(n + 1));
      }
    }
  };
  // Sometimes attach a REAL partial signature (ours) to a wrong claim, and
  // sometimes a totally fabricated one.
  auto rnd_partial = [&] {
    if (rng_.chance(1, 2)) {
      const std::uint32_t k = rng_.chance(1, 2) ? t + 1 : commit_quorum(n, t);
      return ctrl.bundle(as).share(k).partial_sign(rnd_digest());
    }
    PartialSig p;
    p.signer = static_cast<ProcessId>(rng_.below(n + 2));
    p.digest = rnd_digest();
    p.k = rnd_k();
    p.tag = rng_.next();
    return p;
  };
  auto rnd_threshold_sig = [&] {
    ThresholdSig c;
    c.digest = rnd_digest();
    c.k = rnd_k();
    c.tag = rng_.next();
    return c;
  };

  switch (rng_.below(14)) {
    case 0: {
      auto m = pool::make<wba::ProposeMsg>();
      m->phase = rnd_phase();
      m->value = rnd_wire();
      return m;
    }
    case 1: {
      auto m = pool::make<wba::VoteMsg>();
      m->phase = rnd_phase();
      m->partial = rnd_partial();
      return m;
    }
    case 2: {
      auto m = pool::make<wba::CommitMsg>();
      m->phase = rnd_phase();
      m->value = rnd_wire();
      m->level = rng_.below(n + 2);
      m->qc = rnd_threshold_sig();
      return m;
    }
    case 3: {
      auto m = pool::make<wba::DecideMsg>();
      m->phase = rnd_phase();
      m->partial = rnd_partial();
      return m;
    }
    case 4: {
      auto m = pool::make<wba::FinalizedMsg>();
      m->phase = rnd_phase();
      m->value = rnd_wire();
      m->qc = rnd_threshold_sig();
      return m;
    }
    case 5: {
      auto m = pool::make<wba::HelpReqMsg>();
      m->partial = rnd_partial();
      return m;
    }
    case 6: {
      auto m = pool::make<wba::HelpMsg>();
      m->value = rnd_wire();
      m->proof_phase = rnd_phase();
      m->decide_proof = rnd_threshold_sig();
      return m;
    }
    case 7: {
      auto m = pool::make<wba::FallbackMsg>();
      m->fallback_qc = rnd_threshold_sig();
      m->has_decision = rng_.chance(1, 2);
      m->value = rnd_wire();
      m->proof_phase = rnd_phase();
      m->decide_proof = rnd_threshold_sig();
      return m;
    }
    case 8: {
      auto m = pool::make<bb::HelpReqMsg>();
      m->phase = rnd_phase();
      return m;
    }
    case 9: {
      auto m = pool::make<bb::IdkMsg>();
      m->phase = rnd_phase();
      m->partial = rnd_partial();
      return m;
    }
    case 10: {
      auto m = pool::make<bb::LeaderValueMsg>();
      m->phase = rnd_phase();
      m->value = rnd_wire();
      return m;
    }
    case 11: {
      auto m = pool::make<sba::ProposeCertMsg>();
      m->value = rnd_value();
      m->qc = rnd_threshold_sig();
      return m;
    }
    case 12: {
      auto m = pool::make<fallback::DsRelayMsg>();
      m->instance = static_cast<ProcessId>(rng_.below(n + 2));
      m->value = rnd_wire();
      // Chain: a real self-signature on a random relay claim, with the
      // signer set sometimes inflated.
      const Signature s = ctrl.bundle(as).signer().sign(
          fallback::ds_relay_digest(instance_, m->instance, m->value));
      m->chain = aggregate_start(ctrl.crypto().pki(), s);
      if (rng_.chance(1, 2)) {
        m->chain.signers.insert(static_cast<ProcessId>(rng_.below(n)));
      }
      return m;
    }
    default: {
      // Replay a random correct message observed this round under our own
      // link identity, or plain junk when the wire is quiet.
      const auto posted = ctrl.posted_this_round();
      if (!posted.empty() && rng_.chance(2, 3)) {
        return posted[rng_.below(posted.size())].body;
      }
      auto m = pool::make<JunkMsg>();
      m->blob = rng_.next() ^ r;
      return m;
    }
  }
}

void Fuzzer::act(Round r, AdversaryControl& ctrl) {
  for (ProcessId pid : corrupted_) {
    for (std::uint32_t i = 0; i < per_round_; ++i) {
      PayloadPtr body = random_payload(r, ctrl, pid);
      if (rng_.chance(1, 4)) {
        ctrl.broadcast_as(pid, body);
      } else {
        ctrl.send_as(pid, static_cast<ProcessId>(rng_.below(ctrl.n())),
                     std::move(body));
      }
    }
  }
}

}  // namespace mewc::adv
