// Randomized Byzantine traffic generator ("fuzz adversary"): every round,
// corrupted processes inject protocol messages of random types with random
// or subtly-corrupted fields — garbage certificates, mismatched digests,
// foreign thresholds, replayed correct traffic under a Byzantine link
// identity, and real partial signatures attached to the wrong claims.
//
// Purpose: failure injection for the validation layers. No matter what this
// adversary emits, every protocol invariant (agreement, termination,
// validity) must survive; tests sweep it over seeds and system sizes.
#pragma once

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace mewc::adv {

class Fuzzer final : public Adversary {
 public:
  /// `messages_per_round` random injections per corrupted process per
  /// round. Corruptions are spread across the id space, skipping `spare`
  /// (so tests can keep a designated sender/leader correct).
  Fuzzer(std::uint64_t instance, std::uint64_t seed, std::uint32_t corruptions,
         std::uint32_t messages_per_round, ProcessId spare = kNoProcess)
      : instance_(instance),
        rng_(seed),
        corruptions_(corruptions),
        per_round_(messages_per_round),
        spare_(spare) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

 private:
  [[nodiscard]] PayloadPtr random_payload(Round r, AdversaryControl& ctrl,
                                          ProcessId as);

  std::uint64_t instance_;
  Rng rng_;
  std::uint32_t corruptions_;
  std::uint32_t per_round_;
  ProcessId spare_;
  std::vector<ProcessId> corrupted_;
};

}  // namespace mewc::adv
