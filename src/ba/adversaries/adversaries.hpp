// Adversary strategy library (DESIGN.md S8). Each strategy drives a
// specific Byzantine branch of the protocols:
//
//  * NullAdversary            — f = 0 runs.
//  * CrashAdversary           — victims never send (covers silent-Byzantine
//                               and the classic crash pattern; from_round
//                               models mid-run crashes).
//  * AdaptiveLeaderCrash      — adaptively corrupts the upcoming phase
//                               leader right before its phase, maximizing
//                               non-silent phases: the worst-case pattern
//                               behind the O(n(f+1)) bound.
//  * BbEquivocatingSender     — BB sender signs different values to
//                               different halves (or only a subset).
//  * WbaCertSplit             — Byzantine weak-BA phase leader forms a real
//                               commit certificate but reveals the finalize
//                               certificate to a chosen few, creating
//                               decided/undecided splits (exercises commit
//                               levels, help round, Lemma 15).
//  * WbaHelpSpam              — corrupted processes spam help_req partials,
//                               driving the O(nf) help-answer cost and the
//                               fallback-certificate echo path.
//  * Alg5Withhold             — Byzantine Algorithm 5 leader: splits
//                               propose certificates between halves or
//                               reveals the decide certificate to a chosen
//                               few (exercises the 2δ window adoption).
//  * Composite                — runs several strategies side by side.
#pragma once

#include <memory>
#include <vector>

#include "ba/value.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace mewc::adv {

class NullAdversary final : public Adversary {};

class CrashAdversary final : public Adversary {
 public:
  explicit CrashAdversary(std::vector<ProcessId> victims, Round from_round = 1)
      : victims_(std::move(victims)), from_round_(from_round) {}

  void setup(AdversaryControl& ctrl) override;
  void pre_round(Round r, AdversaryControl& ctrl) override;

 private:
  std::vector<ProcessId> victims_;
  Round from_round_;
};

/// Corrupts the leader of each upcoming phase (while budget lasts) just
/// before the phase begins, then keeps it silent. Parameterized by the
/// protocol's phase geometry so it works for BB and weak BA alike.
class AdaptiveLeaderCrash final : public Adversary {
 public:
  AdaptiveLeaderCrash(Round first_phase_round, Round phase_len,
                      std::uint64_t num_phases, std::uint32_t budget)
      : first_(first_phase_round),
        len_(phase_len),
        phases_(num_phases),
        budget_(budget) {}

  void pre_round(Round r, AdversaryControl& ctrl) override;

 private:
  Round first_;
  Round len_;
  std::uint64_t phases_;
  std::uint32_t budget_;
};

/// BB sender behaviors.
enum class SenderMode {
  kSilent,     // never sends (forces the idk path; decision must be ⊥)
  kEquivocate, // signs v0 for even recipients, v1 for odd ones
  kPartial,    // signs one value but only tells the first `reach` processes
};

class BbEquivocatingSender final : public Adversary {
 public:
  BbEquivocatingSender(ProcessId sender, std::uint64_t instance,
                       SenderMode mode, Value v0, Value v1,
                       std::uint32_t reach = 0)
      : sender_(sender),
        instance_(instance),
        mode_(mode),
        v0_(v0),
        v1_(v1),
        reach_(reach) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

 private:
  ProcessId sender_;
  std::uint64_t instance_;
  SenderMode mode_;
  Value v0_;
  Value v1_;
  std::uint32_t reach_;
};

/// Byzantine weak-BA leader of phase `phase`: proposes `value`, builds a
/// commit certificate from the real votes (plus corrupted shares), reveals
/// it to everyone, then reveals the finalize certificate to only
/// `finalize_recipients` correct processes.
class WbaCertSplit final : public Adversary {
 public:
  /// With `poison_help` set, the finalize certificate is withheld during
  /// the phases entirely (finalize_recipients ignored) and instead
  /// disclosed through a <help> message to exactly one correct process in
  /// the help-reply round — the NOTE-2 attack: the lone last-moment
  /// decider must still drag everyone to its value through the window.
  WbaCertSplit(std::uint64_t instance, std::uint64_t phase, WireValue value,
               std::uint32_t extra_corruptions,
               std::uint32_t finalize_recipients, bool poison_help = false)
      : instance_(instance),
        phase_(phase),
        value_(value),
        extra_(extra_corruptions),
        finalize_recipients_(finalize_recipients),
        poison_help_(poison_help) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

 private:
  [[nodiscard]] Round phase_round(Round local) const {
    return static_cast<Round>(5 * (phase_ - 1)) + local;
  }

  std::uint64_t instance_;
  std::uint64_t phase_;
  WireValue value_;
  std::uint32_t extra_;
  std::uint32_t finalize_recipients_;
  bool poison_help_ = false;
  ProcessId leader_ = kNoProcess;
  std::vector<PartialSig> votes_;
  std::vector<PartialSig> decides_;
  std::optional<ThresholdSig> commit_qc_;
  std::optional<ThresholdSig> finalize_qc_;
};

/// The strongest Lemma 15 stressor: two consecutive Byzantine-led phases
/// try to commit CONFLICTING values. Phase `phase`: propose v, form a real
/// commit certificate from the votes, reveal it to only `reveal` correct
/// processes, and withhold the finalize certificate entirely. Phase
/// phase+1: propose w to everyone, harvest votes from the processes that
/// never saw the v-commit, add corrupted shares, and push w through commit
/// AND finalize. The quorum arithmetic of Section 6 must make at most one
/// finalize certificate formable — the adversary forms whichever it can
/// and the run must stay in agreement.
class WbaTwoPhaseConflict final : public Adversary {
 public:
  WbaTwoPhaseConflict(std::uint64_t instance, std::uint64_t phase,
                      WireValue v, WireValue w, std::uint32_t extra,
                      std::uint32_t reveal)
      : instance_(instance),
        phase_(phase),
        v_(v),
        w_(w),
        extra_(extra),
        reveal_(reveal) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

  /// Whether the adversary managed to mint each artifact (for tests).
  [[nodiscard]] bool committed_v() const { return commit_v_.has_value(); }
  [[nodiscard]] bool committed_w() const { return commit_w_.has_value(); }
  [[nodiscard]] bool finalized_w() const { return finalized_w_; }

 private:
  [[nodiscard]] Round phase_round(std::uint64_t phase, Round local) const {
    return static_cast<Round>(5 * (phase - 1)) + local;
  }
  void harvest_votes(AdversaryControl& ctrl, std::uint64_t phase,
                     const WireValue& value, std::vector<PartialSig>& into);

  std::uint64_t instance_;
  std::uint64_t phase_;
  WireValue v_;
  WireValue w_;
  std::uint32_t extra_;
  std::uint32_t reveal_;
  ProcessId leader1_ = kNoProcess;
  ProcessId leader2_ = kNoProcess;
  std::vector<PartialSig> votes_v_;
  std::vector<PartialSig> votes_w_;
  std::vector<PartialSig> decides_w_;
  std::optional<ThresholdSig> commit_v_;
  std::optional<ThresholdSig> commit_w_;
  bool finalized_w_ = false;
};

/// Corrupted processes broadcast help_req partials in the weak-BA help
/// round even though nothing is wrong, forcing decided processes to answer
/// (the Section 6 O(nf) help cost) and possibly minting a fallback
/// certificate from thin air plus `steal_correct_partials` captured ones.
/// In `covert` mode the corrupted partials never touch the wire: correct
/// processes see too few help_reqs to combine a certificate themselves
/// (Alg 3 line 10 stays cold), so the minted certificate disclosed to
/// `cert_recipients` is their only route to one — driving the line 17
/// "note" and line 21 "echo" paths.
class WbaHelpSpam final : public Adversary {
 public:
  WbaHelpSpam(std::uint64_t instance, Round help_round,
              std::uint32_t corruptions, bool form_certificate,
              std::uint32_t cert_recipients, bool covert = false)
      : instance_(instance),
        help_round_(help_round),
        corruptions_(corruptions),
        form_certificate_(form_certificate),
        cert_recipients_(cert_recipients),
        covert_(covert) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

 private:
  std::uint64_t instance_;
  Round help_round_;
  std::uint32_t corruptions_;
  bool form_certificate_;
  std::uint32_t cert_recipients_;
  bool covert_;
  std::vector<ProcessId> corrupted_;
  std::vector<PartialSig> stolen_;
};

/// Byzantine BB vetting leader (NOTE-1 driver): runs its phase honestly —
/// help_req, collect idk partials, mint the idk certificate — but reveals
/// the resulting value to only the `reach` highest-id correct processes.
/// Later correct value-less leaders must then relay the certificate they
/// learn from reached processes (the generalized Algorithm 2 line 23).
class BbPartialRelay final : public Adversary {
 public:
  BbPartialRelay(std::uint64_t instance, std::uint64_t phase,
                 std::uint32_t reach)
      : instance_(instance), phase_(phase), reach_(reach) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

 private:
  // BB phase j occupies rounds 3(j-1)+2 .. 3(j-1)+4.
  [[nodiscard]] Round phase_round(Round local) const {
    return static_cast<Round>(3 * (phase_ - 1)) + 1 + local;
  }

  std::uint64_t instance_;
  std::uint64_t phase_;
  std::uint32_t reach_;
  ProcessId leader_ = kNoProcess;
  std::vector<PartialSig> idk_partials_;
};

/// Algorithm 5 Byzantine leader behaviors.
enum class Alg5Mode {
  kSilent,        // leader never speaks: everyone falls back
  kSplitPropose,  // certify both values if possible; split between halves
  kHideDecide,    // run honestly but reveal the decide certificate to only
                  // `reach` correct processes
};

class Alg5Withhold final : public Adversary {
 public:
  Alg5Withhold(std::uint64_t instance, Alg5Mode mode, std::uint32_t reach = 1)
      : instance_(instance), mode_(mode), reach_(reach) {}

  void setup(AdversaryControl& ctrl) override;
  void act(Round r, AdversaryControl& ctrl) override;

 private:
  std::uint64_t instance_;
  Alg5Mode mode_;
  std::uint32_t reach_;
  std::vector<PartialSig> inputs_[2];
  std::vector<PartialSig> decide_partials_;
  std::optional<Value> proposed_;
};

/// Adaptive corruption fuzzer: corrupts random processes at random rounds
/// (up to `budget`), each victim silenced from its corruption round on.
/// Sweeps the adaptive-adversary dimension of the model (Section 2) that
/// static-victim strategies never reach.
class RandomAdaptiveCrash final : public Adversary {
 public:
  RandomAdaptiveCrash(std::uint64_t seed, std::uint32_t budget,
                      Round horizon, ProcessId spare = kNoProcess)
      : rng_(seed), budget_(budget), horizon_(horizon), spare_(spare) {}

  void pre_round(Round r, AdversaryControl& ctrl) override {
    if (budget_ == 0 || r > horizon_) return;
    // Expected ~budget corruptions spread across the horizon.
    if (!rng_.chance(2 * budget_, 2 * horizon_)) return;
    const auto pid = static_cast<ProcessId>(rng_.below(ctrl.n()));
    if (pid == spare_ || ctrl.is_corrupted(pid)) return;
    if (ctrl.corrupt(pid)) --budget_;
  }

 private:
  Rng rng_;
  std::uint32_t budget_;
  Round horizon_;
  ProcessId spare_;
};

class Composite final : public Adversary {
 public:
  explicit Composite(std::vector<std::unique_ptr<Adversary>> parts)
      : parts_(std::move(parts)) {}

  void setup(AdversaryControl& ctrl) override {
    for (auto& p : parts_) p->setup(ctrl);
  }
  void pre_round(Round r, AdversaryControl& ctrl) override {
    for (auto& p : parts_) p->pre_round(r, ctrl);
  }
  void act(Round r, AdversaryControl& ctrl) override {
    for (auto& p : parts_) p->act(r, ctrl);
  }

 private:
  std::vector<std::unique_ptr<Adversary>> parts_;
};

}  // namespace mewc::adv
