// Multi-valued strong BA by composition (an extension the paper leaves
// implicit): Table 1 lists multi-valued strong BA at O(n^2) via Momose-Ren
// and leaves adaptive multi-valued strong BA open. Composing the paper's
// own BB into interactive consistency and applying a local plurality rule
// yields a multi-valued strong BA with O(n^2(f+1)) words at n = 2t+1:
//
//   * Agreement: all correct processes hold the SAME vector (IC), so the
//     same deterministic plurality.
//   * Strong unanimity: if all correct propose v, at least n-f >= t+1
//     slots decide v (BB validity per lane), and every other value owns at
//     most f <= t slots — strictly fewer — so the plurality is v.
//   * Termination: the IC schedule is fixed.
//
// Not fully adaptive (the n lanes cost Θ(n^2) even failure-free), but
// adaptive in f on top of that — a data point between Algorithm 5's
// binary O(n) and the open problem.
#pragma once

#include <map>

#include "ba/vector/interactive_consistency.hpp"

namespace mewc::ic {

struct MvbaStats {
  bool decided = false;
  Value decision = kBottom;
};

class MultiValuedBaProcess final : public IProcess {
 public:
  MultiValuedBaProcess(const ProtocolContext& ctx, Value input)
      : ic_(ctx, input) {}

  [[nodiscard]] static Round total_rounds(std::uint32_t n, std::uint32_t t) {
    return InteractiveConsistencyProcess::total_rounds(n, t);
  }

  void on_send(Round r, Outbox& out) override { ic_.on_send(r, out); }

  void on_receive(Round r, std::span<const Message> inbox) override {
    ic_.on_receive(r, inbox);
    if (ic_.stats().decided && !stats_.decided) {
      stats_.decided = true;
      stats_.decision = plurality(ic_.stats().vector);
    }
  }

  [[nodiscard]] const MvbaStats& stats() const { return stats_; }
  [[nodiscard]] Value decision() const { return stats_.decision; }

  /// Deterministic plurality over non-⊥ slots; ties break toward the
  /// smaller raw value; an all-⊥ vector yields ⊥.
  [[nodiscard]] static Value plurality(const std::vector<Value>& vec) {
    std::map<std::uint64_t, std::uint32_t> counts;
    for (const Value& v : vec) {
      if (!v.is_bottom()) ++counts[v.raw];
    }
    Value best = kBottom;
    std::uint32_t best_count = 0;
    for (const auto& [raw, count] : counts) {  // ordered: ties keep smaller
      if (count > best_count) {
        best_count = count;
        best = Value(raw);
      }
    }
    return best;
  }

 private:
  InteractiveConsistencyProcess ic_;
  MvbaStats stats_;
};

}  // namespace mewc::ic
