// Interactive consistency (vector consensus) from n parallel adaptive BB
// instances — the classic derived primitive: every process proposes a
// value, and all correct processes agree on a full VECTOR whose slot i is
// p_i's value whenever p_i is correct (and a common value-or-⊥ otherwise).
//
// Construction: one BB lane per process, all lanes running over the same
// synchronous rounds, multiplexed by a one-word lane tag. Lane i's
// designated sender is p_i; lane instances are domain-separated so no
// signature is replayable across lanes. Cost: n lanes x O(n(f+1)) =
// O(n^2(f+1)) words, and failure-free runs stay quadratic — which the
// Dolev-Reischuk bound makes optimal up to constants for this primitive
// (n broadcasts each costing Omega(n)).
//
// This module shows the paper's BB doing the job its introduction
// advertises: a drop-in component for bigger distributed abstractions.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ba/bb/bb.hpp"
#include "net/arena.hpp"

namespace mewc::ic {

/// Envelope multiplexing lane traffic over shared rounds. The lane tag
/// shares the message's first word (it is a small integer).
struct MuxMsg final : public Payload {
  std::uint32_t lane = 0;
  PayloadPtr inner;

  [[nodiscard]] std::size_t words() const override { return inner->words(); }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return inner->logical_signatures();
  }
  [[nodiscard]] const char* kind() const override { return "ic.mux"; }
};

struct IcStats {
  bool decided = false;
  std::vector<Value> vector;  // slot i: lane i's decision (kBottom = ⊥)
};

class InteractiveConsistencyProcess final : public IProcess {
 public:
  /// `input` is this process's own proposal (lane ctx.id's broadcast value).
  InteractiveConsistencyProcess(const ProtocolContext& ctx, Value input);

  [[nodiscard]] static Round total_rounds(std::uint32_t n, std::uint32_t t) {
    return bb::BbProcess::total_rounds(n, t);
  }

  void on_send(Round r, Outbox& out) override;
  void on_receive(Round r, std::span<const Message> inbox) override;

  [[nodiscard]] const IcStats& stats() const { return stats_; }
  /// Lane i's decision (valid after the last round).
  [[nodiscard]] Value slot(ProcessId lane) const {
    return lanes_[lane]->decision();
  }

 private:
  ProtocolContext ctx_;
  std::vector<std::unique_ptr<bb::BbProcess>> lanes_;
  IcStats stats_;
};

/// Lane-scoped outbox adapter: wraps everything a lane sends in MuxMsg.
class LaneOutbox {
 public:
  LaneOutbox(Outbox& out, std::uint32_t lane) : out_(out), lane_(lane) {}

  void forward(const Outbox& lane_out) {
    for (const auto& [to, body] : lane_out.sends()) {
      auto mux = pool::make<MuxMsg>();
      mux->lane = lane_;
      mux->inner = body;
      out_.send(to, mux);
    }
  }

 private:
  Outbox& out_;
  std::uint32_t lane_;
};

}  // namespace mewc::ic
