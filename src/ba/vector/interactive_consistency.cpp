#include "ba/vector/interactive_consistency.hpp"

namespace mewc::ic {

InteractiveConsistencyProcess::InteractiveConsistencyProcess(
    const ProtocolContext& ctx, Value input)
    : ctx_(ctx) {
  lanes_.reserve(ctx.n);
  for (ProcessId lane = 0; lane < ctx.n; ++lane) {
    ProtocolContext lane_ctx = ctx;
    // Domain-separate the lanes: signatures from lane i can never be
    // replayed into lane j.
    lane_ctx.instance = hash_combine(ctx.instance, 0x1c0ull + lane);
    lanes_.push_back(std::make_unique<bb::BbProcess>(
        lane_ctx, /*sender=*/lane, /*input=*/input));
  }
}

void InteractiveConsistencyProcess::on_send(Round r, Outbox& out) {
  for (std::uint32_t lane = 0; lane < ctx_.n; ++lane) {
    Outbox lane_out(ctx_.n);
    lanes_[lane]->on_send(r, lane_out);
    LaneOutbox(out, lane).forward(lane_out);
  }
}

void InteractiveConsistencyProcess::on_receive(
    Round r, std::span<const Message> inbox) {
  // Demultiplex into per-lane inboxes, preserving link-level sender stamps.
  std::vector<std::vector<Message>> per_lane(ctx_.n);
  for (const Message& m : inbox) {
    const auto* mux = payload_cast<MuxMsg>(m.body);
    if (mux == nullptr || mux->lane >= ctx_.n || mux->inner == nullptr) {
      continue;  // foreign or malformed: noise
    }
    Message unwrapped = m;
    unwrapped.body = mux->inner;
    per_lane[mux->lane].push_back(std::move(unwrapped));
  }
  for (std::uint32_t lane = 0; lane < ctx_.n; ++lane) {
    lanes_[lane]->on_receive(r, per_lane[lane]);
  }

  if (r == total_rounds(ctx_.n, ctx_.t)) {
    stats_.decided = true;
    stats_.vector.clear();
    for (std::uint32_t lane = 0; lane < ctx_.n; ++lane) {
      stats_.decided &= lanes_[lane]->decided();
      stats_.vector.push_back(lanes_[lane]->decision());
    }
  }
}

}  // namespace mewc::ic
