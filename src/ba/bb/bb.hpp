// Adaptive Byzantine Broadcast (paper Section 5, Algorithms 1 + 2):
// O(n(f+1)) words at resilience n = 2t + 1.
//
// Structure: (1) the designated sender disseminates its signed value;
// (2) n vetting phases with rotating leaders — a leader that still has no
// value asks for help, and either relays a BB_valid value it learns or
// batches t+1 idk partial signatures into an idk quorum certificate, itself
// a decidable value meaning "the sender never spoke"; (3) a weak BA run
// with the BB_valid predicate; a decision of the form <v>_sender yields v,
// anything else yields ⊥.
//
// Phases led by correct processes that already hold a value are silent,
// which bounds non-silent phases by O(f+1) (Section 5.1).
//
// NOTE-1 (faithful completion, see DESIGN.md): Algorithm 2 line 23 has the
// leader re-broadcast a received value only when it is sender-signed. If
// some correct processes hold an idk certificate from an earlier phase and
// the rest hold nothing, a correct leader would receive neither a
// sender-signed value nor t+1 fresh idk replies and the phase guarantee
// (Lemma 9) would fail. We generalize the check to "any BB_valid value,
// preferring sender-signed" — receivers already accept exactly that (line
// 28), and when the sender is correct no idk certificate can exist (Lemma
// 10), so all lemmas are preserved.
//
// Round schedule: round 1 = dissemination; phase j = rounds 3(j-1)+2 ..
// 3(j-1)+4 (help_req / reply / leader value); weak BA occupies the rest.
#pragma once

#include <optional>

#include "ba/context.hpp"
#include "ba/validity/predicate.hpp"
#include "ba/weak_ba/weak_ba.hpp"
#include "net/payload.hpp"
#include "sim/process.hpp"

namespace mewc::bb {

/// <v>_sender, broadcast in round 1 (Algorithm 1, line 2).
struct SenderValueMsg final : public Payload {
  WireValue value;  // prov == kSigned by the designated sender

  [[nodiscard]] std::size_t words() const override { return value.words(); }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures();
  }
  [[nodiscard]] const char* kind() const override { return "bb.sender_value"; }
};

/// <help_req, j>_leader (Algorithm 2, line 16).
struct HelpReqMsg final : public Payload {
  std::uint64_t phase = 0;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "bb.help_req"; }
};

/// <v_i, j> reply to the leader (line 19).
struct ReplyValueMsg final : public Payload {
  std::uint64_t phase = 0;
  WireValue value;

  [[nodiscard]] std::size_t words() const override { return value.words(); }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures();
  }
  [[nodiscard]] const char* kind() const override { return "bb.reply_value"; }
};

/// <idk, j>_pi reply: a (t+1)-scheme partial over bb_idk_digest (line 21).
struct IdkMsg final : public Payload {
  std::uint64_t phase = 0;
  PartialSig partial;

  [[nodiscard]] std::size_t words() const override { return 1; }
  [[nodiscard]] std::size_t logical_signatures() const override { return 1; }
  [[nodiscard]] const char* kind() const override { return "bb.idk"; }
};

/// <v, j> from the leader (lines 24 and 27): a sender-signed value, a
/// previously-certified value (NOTE-1), or a fresh idk certificate.
struct LeaderValueMsg final : public Payload {
  std::uint64_t phase = 0;
  WireValue value;

  [[nodiscard]] std::size_t words() const override { return value.words(); }
  [[nodiscard]] std::size_t logical_signatures() const override {
    return value.logical_signatures();
  }
  [[nodiscard]] const char* kind() const override { return "bb.leader_value"; }
};

struct BbStats {
  bool decided = false;
  Value decision = kBottom;       // ⊥ when the weak BA output was not <v>_sender
  bool led_nonsilent_phase = false;
  bool adopted_from_sender = false;
  bool fallback_participant = false;
  Round decided_round = 0;        // round the inner weak BA decided (global
                                  // numbering); the BB output is fixed then
};

class BbProcess final : public IProcess {
 public:
  /// `input` is meaningful only at the designated sender (v_sender).
  BbProcess(const ProtocolContext& ctx, ProcessId sender, Value input);

  [[nodiscard]] static Round total_rounds(std::uint32_t n, std::uint32_t t) {
    return 1 + 3 * n + wba::WeakBaProcess::total_rounds(n, t);
  }

  void on_send(Round r, Outbox& out) override;
  void on_receive(Round r, std::span<const Message> inbox) override;

  [[nodiscard]] bool decided() const { return stats_.decided; }
  [[nodiscard]] Value decision() const { return stats_.decision; }
  [[nodiscard]] const BbStats& stats() const { return stats_; }

  /// The underlying weak BA outcome (for tests/experiments).
  [[nodiscard]] const wba::WeakBaProcess* weak_ba() const {
    return wba_ ? &*wba_ : nullptr;
  }

  [[nodiscard]] static ProcessId leader_of(std::uint64_t phase,
                                           std::uint32_t n) {
    return static_cast<ProcessId>((phase - 1) % n);
  }

 private:
  [[nodiscard]] Round wba_first_round() const { return 1 + 3 * ctx_.n + 1; }
  [[nodiscard]] Round last_round() const {
    return total_rounds(ctx_.n, ctx_.t);
  }
  [[nodiscard]] static std::uint64_t phase_of(Round r) { return (r - 2) / 3 + 1; }
  [[nodiscard]] static Round phase_local(Round r) { return (r - 2) % 3 + 1; }

  void phase_send(std::uint64_t j, Round local, Outbox& out);
  void phase_receive(std::uint64_t j, Round local,
                     std::span<const Message> inbox);
  void ensure_wba();

  ProtocolContext ctx_;
  ProcessId sender_;
  Value input_;
  std::shared_ptr<const BbValid> predicate_;

  WireValue vi_ = bottom_value();  // current BA initial value (Algorithm 1)

  // Per-phase scratch.
  struct PhaseScratch {
    bool reply_needed = false;
    std::optional<WireValue> best_reply;  // sender-signed preferred
    std::vector<PartialSig> idk_partials;
  };
  PhaseScratch ph_;

  std::optional<wba::WeakBaProcess> wba_;
  BbStats stats_;
};

}  // namespace mewc::bb
