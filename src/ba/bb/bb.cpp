#include "ba/bb/bb.hpp"

#include "check/coverage.hpp"
#include "common/check.hpp"
#include "crypto/signer_set.hpp"
#include "net/arena.hpp"

namespace mewc::bb {

BbProcess::BbProcess(const ProtocolContext& ctx, ProcessId sender, Value input)
    : ctx_(ctx),
      sender_(sender),
      input_(input),
      predicate_(
          std::make_shared<BbValid>(*ctx.crypto, ctx.instance, sender)) {
  MEWC_CHECK(sender < ctx.n);
}

void BbProcess::ensure_wba() {
  if (!wba_) {
    // Algorithm 1, line 9: enter weak BA with the vetted value. Lemma 11
    // guarantees v_i is BB_valid here for every correct process.
    MEWC_COV(alg1_line9_enter_weak_ba);
    wba_.emplace(ctx_, predicate_, vi_);
  }
}

void BbProcess::phase_send(std::uint64_t j, Round local, Outbox& out) {
  const ProcessId leader = leader_of(j, ctx_.n);
  switch (local) {
    case 1: {  // lines 15-16: a value-less leader asks for help
      ph_ = PhaseScratch{};
      if (leader == ctx_.id && vi_.is_bottom()) {
        MEWC_COV(alg2_line16_help_request);
        auto msg = pool::make<HelpReqMsg>();
        msg->phase = j;
        out.broadcast(msg);
        stats_.led_nonsilent_phase = true;
      } else if (leader == ctx_.id) {
        // Line 15 negative: a leader holding a value leads a silent phase —
        // the adaptivity the word bound rests on.
        MEWC_COV(alg2_line15_silent_phase);
      }
      break;
    }
    case 2: {  // lines 17-21: answer with the value or an idk partial
      if (!ph_.reply_needed) break;
      if (!vi_.is_bottom()) {
        MEWC_COV(alg2_line18_reply_value);
        auto msg = pool::make<ReplyValueMsg>();
        msg->phase = j;
        msg->value = vi_;
        out.send(leader, msg);
      } else {
        MEWC_COV(alg2_line20_reply_idk);
        auto msg = pool::make<IdkMsg>();
        msg->phase = j;
        msg->partial =
            ctx_.partial_sign(ctx_.t + 1, bb_idk_digest(ctx_.instance, j));
        out.send(leader, msg);
      }
      break;
    }
    case 3: {  // lines 22-27: leader relays a valid value or batches idk
      if (leader != ctx_.id) break;
      if (ph_.best_reply) {
        MEWC_COV(alg2_line23_leader_relay_value);
        auto msg = pool::make<LeaderValueMsg>();
        msg->phase = j;
        msg->value = *ph_.best_reply;
        out.broadcast(msg);
      } else if (ph_.idk_partials.size() >= ctx_.t + 1) {
        MEWC_COV(alg2_line25_leader_idk_cert);
        auto qc = ctx_.scheme(ctx_.t + 1).combine(ph_.idk_partials);
        MEWC_CHECK_MSG(qc.has_value(), "verified idk partials must combine");
        auto msg = pool::make<LeaderValueMsg>();
        msg->phase = j;
        msg->value = WireValue::certified(kIdkValue, *qc, /*aux=*/j);
        out.broadcast(msg);
      }
      break;
    }
    default:
      break;
  }
}

void BbProcess::phase_receive(std::uint64_t j, Round local,
                              std::span<const Message> inbox) {
  const ProcessId leader = leader_of(j, ctx_.n);
  switch (local) {
    case 1: {
      for (const Message& m : inbox) {
        if (m.from != leader) continue;
        const auto* h = payload_cast<HelpReqMsg>(m.body);
        if (h == nullptr || h->phase != j) continue;
        ph_.reply_needed = true;
        break;
      }
      break;
    }
    case 2: {  // leader aggregates replies
      if (leader != ctx_.id) break;
      SignerSet idk_seen(ctx_.n);
      const Digest idk_want = bb_idk_digest(ctx_.instance, j);
      for (const Message& m : inbox) {
        if (const auto* rv = payload_cast<ReplyValueMsg>(m.body)) {
          if (rv->phase != j || !predicate_->validate(rv->value)) continue;
          // Prefer a sender-signed value (line 23); NOTE-1: otherwise any
          // BB_valid value (an earlier idk certificate) is relayable.
          const bool is_sender_signed = rv->value.prov == Provenance::kSigned;
          if (!ph_.best_reply ||
              (is_sender_signed &&
               ph_.best_reply->prov != Provenance::kSigned)) {
            ph_.best_reply = rv->value;
          }
        } else if (const auto* idk = payload_cast<IdkMsg>(m.body)) {
          if (idk->phase != j) continue;
          if (idk->partial.k != ctx_.t + 1 ||
              idk->partial.digest != idk_want ||
              idk->partial.signer != m.from) {
            continue;
          }
          if (!ctx_.scheme(ctx_.t + 1).verify_partial(idk->partial)) continue;
          if (!idk_seen.insert(idk->partial.signer)) continue;
          ph_.idk_partials.push_back(idk->partial);
        }
      }
      break;
    }
    case 3: {  // lines 28-31 + Algorithm 1 lines 7-8: adopt returned value
      for (const Message& m : inbox) {
        if (m.from != leader) continue;
        const auto* lv = payload_cast<LeaderValueMsg>(m.body);
        if (lv == nullptr || lv->phase != j) continue;
        if (!predicate_->validate(lv->value)) {
          MEWC_COV(alg2_line28_reject_leader_value);
          continue;
        }
        MEWC_COV(alg2_line29_adopt_leader_value);
        vi_ = lv->value;
        break;
      }
      break;
    }
    default:
      break;
  }
}

void BbProcess::on_send(Round r, Outbox& out) {
  if (r == 1) {  // Algorithm 1, lines 1-2
    if (sender_ == ctx_.id) {
      MEWC_COV(alg1_line2_sender_broadcast);
      auto msg = pool::make<SenderValueMsg>();
      msg->value = WireValue::signed_by(
          input_, ctx_.sign(bb_sender_digest(ctx_.instance, input_)));
      out.broadcast(msg);
    }
    return;
  }
  if (r < wba_first_round()) {
    phase_send(phase_of(r), phase_local(r), out);
    return;
  }
  ensure_wba();
  wba_->on_send(r - (wba_first_round() - 1), out);
}

void BbProcess::on_receive(Round r, std::span<const Message> inbox) {
  if (r == 1) {  // Algorithm 1, lines 3-4
    for (const Message& m : inbox) {
      if (m.from != sender_) continue;
      const auto* sv = payload_cast<SenderValueMsg>(m.body);
      if (sv == nullptr || !predicate_->validate(sv->value)) continue;
      if (sv->value.prov != Provenance::kSigned) continue;
      MEWC_COV(alg1_line4_adopt_sender_value);
      vi_ = sv->value;
      stats_.adopted_from_sender = true;
      break;  // the sender signs one value; take the first valid one
    }
    return;
  }
  if (r < wba_first_round()) {
    phase_receive(phase_of(r), phase_local(r), inbox);
    return;
  }
  ensure_wba();
  wba_->on_receive(r - (wba_first_round() - 1), inbox);

  if (r == last_round()) {
    // Algorithm 1, lines 10-13: a sender-signed BA decision yields its
    // value; anything else (including an idk certificate) yields ⊥.
    const WireValue& ba_decision = wba_->decision();
    stats_.decided = wba_->stats().decided;
    stats_.fallback_participant = wba_->stats().fallback_participant;
    if (wba_->stats().decided_round > 0) {
      stats_.decided_round =
          wba_first_round() - 1 + wba_->stats().decided_round;
    }
    if (ba_decision.prov == Provenance::kSigned &&
        predicate_->validate(ba_decision)) {
      MEWC_COV(alg1_line11_decide_signed);
      stats_.decision = ba_decision.value;
    } else {
      MEWC_COV(alg1_line13_decide_bottom);
      stats_.decision = kBottom;
    }
  }
}

}  // namespace mewc::bb
