#include "check/record.hpp"

#include "ba/harness.hpp"
#include "common/hash.hpp"
#include "wire/codec.hpp"

namespace mewc::check {

void MessageLog::observe(const Message& m, bool correct) {
  RecordedMessage r;
  r.from = m.from;
  r.to = m.to;
  r.round = m.round;
  r.words = m.words;
  r.correct = correct;
  r.kind = m.body->kind();
  r.body = m.body;
  messages.push_back(std::move(r));
}

namespace {

Digest digest_stream(const std::vector<RecordedMessage>& messages,
                     bool semantic) {
  Hasher h;
  std::vector<std::uint8_t> buf;
  for (const auto& m : messages) {
    h.feed(m.from).feed(m.to).feed(m.round).feed(m.words);
    h.feed(static_cast<std::uint64_t>(m.correct));
    h.feed(m.kind);
    // Byte-level payload content via the wire codec; payload types without
    // a wire form contribute their kind only.
    const bool encoded = semantic ? wire::encode_semantic(*m.body, buf)
                                  : wire::encode_into(*m.body, buf);
    if (encoded) {
      h.feed(std::string_view(reinterpret_cast<const char*>(buf.data()),
                              buf.size()));
    } else {
      h.feed(std::uint64_t{0});
    }
  }
  h.feed(messages.size());
  return Digest{h.digest()};
}

}  // namespace

Digest MessageLog::stream_digest() const {
  return digest_stream(messages, /*semantic=*/false);
}

Digest MessageLog::semantic_digest() const {
  return digest_stream(messages, /*semantic=*/true);
}

std::string CellSpec::label() const {
  // One label format everywhere: the RunSpec part comes from describe(), the
  // adversarial part (f, adversary) is appended by the cell.
  auto spec = harness::RunSpec::with(n, t);
  spec.seed = seed;
  spec.backend = backend;
  spec.codec_roundtrip = codec_roundtrip;
  spec.executor = executor;
  std::string s = protocol_name(protocol);
  s += " " + spec.describe() + " f=" + std::to_string(f) + " adv=" + adversary;
  return s;
}

std::uint32_t RunRecord::f() const {
  std::uint32_t c = 0;
  for (bool b : corrupted) c += b ? 1 : 0;
  return c;
}

bool RunRecord::sender_correct() const {
  return sender != kNoProcess && sender < corrupted.size() &&
         !corrupted[sender];
}

bool RunRecord::unanimous_correct_inputs(Value* out) const {
  bool seen = false;
  Value common = kBottom;
  for (ProcessId p = 0; p < inputs.size(); ++p) {
    if (p < corrupted.size() && corrupted[p]) continue;
    if (!seen) {
      common = inputs[p].value;
      seen = true;
    } else if (common != inputs[p].value) {
      return false;
    }
  }
  if (seen && out != nullptr) *out = common;
  return seen;
}

}  // namespace mewc::check
