#include "check/protocols.hpp"

#include <string>

#include "ba/baseline/baselines.hpp"
#include "ba/bb/bb.hpp"
#include "ba/fallback/fallback_process.hpp"
#include "ba/strong_ba/strong_ba.hpp"
#include "ba/weak_ba/weak_ba.hpp"
#include "common/check.hpp"

namespace mewc::check {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kBb: return "bb";
    case Protocol::kWeakBa: return "weak-ba";
    case Protocol::kStrongBa: return "strong-ba";
    case Protocol::kFallback: return "fallback";
    case Protocol::kDsBb: return "ds-bb";
  }
  return "?";
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  for (Protocol p : all_protocols()) {
    if (name == protocol_name(p)) return p;
  }
  return std::nullopt;
}

const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> kAll = {
      Protocol::kBb, Protocol::kWeakBa, Protocol::kStrongBa,
      Protocol::kFallback, Protocol::kDsBb};
  return kAll;
}

std::string protocol_names_joined(std::string_view sep) {
  std::string out;
  for (Protocol p : all_protocols()) {
    if (!out.empty()) out += sep;
    out += protocol_name(p);
  }
  return out;
}

Round protocol_rounds(Protocol p, std::uint32_t n, std::uint32_t t) {
  switch (p) {
    case Protocol::kBb: return bb::BbProcess::total_rounds(n, t);
    case Protocol::kWeakBa: return wba::WeakBaProcess::total_rounds(n, t);
    case Protocol::kStrongBa: return sba::StrongBaProcess::total_rounds(t);
    case Protocol::kFallback:
      return fallback::FallbackBaProcess::total_rounds(t);
    case Protocol::kDsBb:
      return baseline::DolevStrongBbProcess::total_rounds(t);
  }
  MEWC_CHECK_MSG(false, "unreachable protocol");
}

PhaseGeometry protocol_phases(Protocol p) {
  switch (p) {
    // BB vetting phase j occupies rounds 3(j-1)+2 .. 3(j-1)+4; the killer
    // strikes ahead of the leader-value round (matching the tools' long-
    // standing geometry).
    case Protocol::kBb: return {4, 3};
    // Weak BA phase j occupies rounds 5(j-1)+1 .. 5j.
    case Protocol::kWeakBa: return {3, 5};
    default: return {1, 1};
  }
}

Round protocol_help_round(Protocol p, std::uint32_t n) {
  switch (p) {
    case Protocol::kWeakBa: return 5 * n + 1;
    // BB embeds a weak BA starting after dissemination + n vetting phases.
    case Protocol::kBb: return 1 + 3 * n + 5 * n + 1;
    default: return 0;
  }
}

}  // namespace mewc::check
