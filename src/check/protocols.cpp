#include "check/protocols.hpp"

#include <string>

#include "ba/harness.hpp"
#include "common/check.hpp"

namespace mewc::check {

namespace {

// Enum-indexed driver-name table. This is the single point tying the check
// subsystem's dense Protocol enum (stable across campaign/replay files) to
// the harness driver registry; everything else delegates to the driver.
constexpr const char* kDriverNames[] = {"bb", "weak-ba", "strong-ba",
                                        "fallback", "ds-bb"};

}  // namespace

const harness::ProtocolDriver& protocol_driver(Protocol p) {
  const auto idx = static_cast<std::size_t>(p);
  MEWC_CHECK(idx < std::size(kDriverNames));
  const harness::ProtocolDriver* d = harness::find_driver(kDriverNames[idx]);
  MEWC_CHECK_MSG(d != nullptr, "protocol missing from driver registry");
  return *d;
}

const char* protocol_name(Protocol p) { return protocol_driver(p).name(); }

std::optional<Protocol> parse_protocol(std::string_view name) {
  for (Protocol p : all_protocols()) {
    if (name == protocol_name(p)) return p;
  }
  return std::nullopt;
}

const std::vector<Protocol>& all_protocols() {
  static const std::vector<Protocol> kAll = {
      Protocol::kBb, Protocol::kWeakBa, Protocol::kStrongBa,
      Protocol::kFallback, Protocol::kDsBb};
  return kAll;
}

std::string protocol_names_joined(std::string_view sep) {
  std::string out;
  for (Protocol p : all_protocols()) {
    if (!out.empty()) out += sep;
    out += protocol_name(p);
  }
  return out;
}

Round protocol_rounds(Protocol p, std::uint32_t n, std::uint32_t t) {
  return protocol_driver(p).total_rounds(n, t);
}

PhaseGeometry protocol_phases(Protocol p) {
  const harness::DriverTraits tr = protocol_driver(p).traits();
  return {tr.phase_first, tr.phase_len};
}

Round protocol_help_round(Protocol p, std::uint32_t n) {
  return protocol_driver(p).help_round(n);
}

}  // namespace mewc::check
