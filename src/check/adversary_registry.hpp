// The single name -> adversary factory table. mewc_sim, mewc_trace and the
// campaign engine all build adversaries through here, so a strategy added
// once is immediately available everywhere (the tools used to each carry a
// private subset and drifted apart).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/protocols.hpp"
#include "common/types.hpp"
#include "sim/adversary.hpp"

namespace mewc::check {

/// Everything a factory may need to instantiate its strategy for one run.
struct AdversaryParams {
  Protocol protocol = Protocol::kWeakBa;
  std::uint32_t n = 0;
  std::uint32_t t = 0;
  std::uint32_t f = 0;  // corruption budget
  std::uint64_t instance = 1;
  std::uint64_t seed = 0;
  std::uint64_t value = 7;           // base input value (for equivocators)
  ProcessId sender = kNoProcess;     // designated BB sender, spared by
                                     // crash-style strategies
};

/// Builds the named adversary, or nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<Adversary> make_adversary(
    std::string_view name, const AdversaryParams& params);

/// All registered names, in table order.
[[nodiscard]] const std::vector<std::string>& adversary_names();

[[nodiscard]] std::string adversary_names_joined(std::string_view sep = "|");

}  // namespace mewc::check
