// Protocol naming and round geometry shared by the check subsystem and the
// CLI tools (mewc_sim, mewc_trace, mewc_vopr). Keeping the name table and
// the phase geometry in one place is what prevents the tools from drifting
// apart as protocols are added.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace mewc::harness {
class ProtocolDriver;
}  // namespace mewc::harness

namespace mewc::check {

enum class Protocol {
  kBb,        // adaptive Byzantine Broadcast (Algorithms 1 + 2)
  kWeakBa,    // adaptive weak BA (Algorithms 3 + 4)
  kStrongBa,  // strong binary BA (Algorithm 5)
  kFallback,  // A_fallback standalone
  kDsBb,      // Dolev-Strong BB baseline
};

[[nodiscard]] const char* protocol_name(Protocol p);
[[nodiscard]] std::optional<Protocol> parse_protocol(std::string_view name);
[[nodiscard]] const std::vector<Protocol>& all_protocols();
[[nodiscard]] std::string protocol_names_joined(std::string_view sep = "|");

/// Total rounds of the protocol's static schedule.
[[nodiscard]] Round protocol_rounds(Protocol p, std::uint32_t n,
                                    std::uint32_t t);

/// Rotating-leader phase structure, for the leader-killer adversary:
/// the round the first phase starts in and the phase length. (1, 1) for
/// protocols without rotating phases.
struct PhaseGeometry {
  Round first = 1;
  Round len = 1;
};
[[nodiscard]] PhaseGeometry protocol_phases(Protocol p);

/// Global round of the weak-BA help exchange (0 when the protocol has none).
[[nodiscard]] Round protocol_help_round(Protocol p, std::uint32_t n);

/// The harness driver backing `p`. All protocol dispatch in the check
/// subsystem and the CLI tools goes through this registry lookup.
[[nodiscard]] const harness::ProtocolDriver& protocol_driver(Protocol p);

}  // namespace mewc::check
