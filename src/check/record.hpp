// Checkable run artifacts: the cell specification that fully determines a
// simulated run, the recorded message stream, and the RunRecord the
// invariant checkers consume. A CellSpec plus the code revision is a
// complete replay token — every field that influences the run is in it.
#pragma once

#include <string>
#include <vector>

#include "ba/value.hpp"
#include "check/protocols.hpp"
#include "crypto/family.hpp"
#include "net/message.hpp"
#include "net/meter.hpp"
#include "sim/executor.hpp"

namespace mewc::check {

/// One link-crossing message as the recorder saw it.
struct RecordedMessage {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Round round = 0;
  std::size_t words = 0;
  bool correct = false;  // sent by a correct process
  std::string kind;
  PayloadPtr body;
};

/// Ordered message stream of one run, with a byte-level fingerprint: each
/// payload is serialized through the wire codec, so two runs with equal
/// stream digests put bit-identical traffic on the wire.
struct MessageLog {
  std::vector<RecordedMessage> messages;

  void observe(const Message& m, bool correct);
  [[nodiscard]] Digest stream_digest() const;
  /// stream_digest with signature/certificate tags masked to zero (see
  /// wire::encode_semantic): equal semantic digests mean two runs agree on
  /// every message, field and signer set, differing at most in the tag
  /// algebra — the property the cross-backend differential harness pins.
  [[nodiscard]] Digest semantic_digest() const;
  [[nodiscard]] std::size_t size() const { return messages.size(); }
};

/// One threshold certificate observed on a correct sender's message,
/// verified against the run's live ThresholdFamily at record time.
struct CertObservation {
  Round round = 0;
  ProcessId from = kNoProcess;
  std::string kind;   // payload kind, e.g. "wba.commit"
  std::string field;  // which certificate within the payload, e.g. "qc"
  std::uint32_t k = 0;           // threshold the certificate claims
  std::uint32_t required_k = 0;  // minimum its position demands
  bool verified = false;         // cryptographic verification result
};

/// Everything that determines one simulated run. The campaign engine
/// enumerates these; the shrinker minimizes them; replay files serialize
/// them.
struct CellSpec {
  Protocol protocol = Protocol::kWeakBa;
  std::uint32_t n = 5;
  std::uint32_t t = 2;
  std::uint32_t f = 0;  // adversary corruption budget
  std::string adversary = "none";
  std::uint64_t seed = 0x5e7;
  ThresholdBackend backend = ThresholdBackend::kSim;
  bool codec_roundtrip = false;
  /// Which IExecutor drives the cell. Behaviour-identical by contract
  /// (the equivalence suite pins it); an axis here so campaigns can sweep
  /// the event-driven path through the same grids.
  ExecutorKind executor = ExecutorKind::kLockstep;
  std::uint64_t value = 7;  // base input value (see derive_inputs)

  [[nodiscard]] std::string label() const;
};

/// The checkable outcome of one run: per-process decisions, the meter, the
/// recorded stream, and the certificate observations.
struct RunRecord {
  CellSpec cell;
  ProcessId sender = kNoProcess;  // designated BB/ds-BB sender
  std::vector<bool> corrupted;
  std::vector<bool> decided;            // meaningful for correct processes
  std::vector<WireValue> decisions;     // meaningful where decided
  std::vector<WireValue> inputs;
  Meter meter;
  Round rounds = 0;
  bool any_fallback = false;
  /// Total signatures issued by correct processes. Backend-independent: the
  /// differential harness pins real == sim here, so a real backend that
  /// signs more (or fewer) times than the ideal one is caught directly.
  std::uint64_t signatures_issued = 0;
  MessageLog log;
  std::vector<CertObservation> certs;

  [[nodiscard]] std::uint32_t f() const;
  [[nodiscard]] bool sender_correct() const;
  [[nodiscard]] bool adaptive() const {
    return adaptive_regime(cell.n, cell.t, f());
  }
  /// True when all correct processes' inputs carry the same value; that
  /// value is written to *out.
  [[nodiscard]] bool unanimous_correct_inputs(Value* out) const;
};

}  // namespace mewc::check
