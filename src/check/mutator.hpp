// Schedule mutators for coverage-guided fuzzing: small, structure-aware
// edits of a CellSpec (the complete replay token of one run). The fuzz loop
// in mewc_vopr draws a base and a donor entry from its corpus, applies one
// seeded operator, and keeps the mutant iff its run reaches a coverage site
// (src/check/coverage.hpp) no prior run reached.
//
// Every operator preserves cell validity (t >= 1, n >= 2t+1, f <= t, a
// registry adversary name), so a mutant is always runnable; determinism
// comes from drawing all randomness from one explicit Rng.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "check/record.hpp"
#include "common/rng.hpp"

namespace mewc::check {

// The operator catalogue, one X() per mutator (order is the fallback-scan
// order when a drawn operator is inapplicable to the base cell).
#define MEWC_MUTATOR_LIST(X)                                            \
  X(adversary_swap) /* corruption-strategy flip from the registry */    \
  X(protocol_swap)  /* same schedule pressure on a sibling protocol */  \
  X(f_up)           /* one more corruption (clamped to t) */            \
  X(f_down)         /* one fewer corruption */                          \
  X(t_up)           /* neighbor system: t+1, n keeps its 2t+1 margin */ \
  X(t_down)                                                             \
  X(n_widen)        /* n+2 toward the 2t+1+max_extra_n rim */           \
  X(n_narrow)       /* n-2 toward the 2t+1 floor */                     \
  X(seed_fresh)     /* new small schedule seed */                       \
  X(splice_donor)   /* graft adversary / seed / f from the donor */     \
  X(value_tweak)    /* new base input value */                          \
  X(codec_toggle)   /* wire round-trip on/off */                        \
  X(backend_toggle) /* sim -> shamir -> real -> sim backend cycle */

enum class Mutator : std::uint8_t {
#define MEWC_MUTATOR_ENUM(name) name,
  MEWC_MUTATOR_LIST(MEWC_MUTATOR_ENUM)
#undef MEWC_MUTATOR_ENUM
};

inline constexpr std::size_t kMutatorCount = [] {
  std::size_t n = 0;
#define MEWC_MUTATOR_COUNT(name) ++n;
  MEWC_MUTATOR_LIST(MEWC_MUTATOR_COUNT)
#undef MEWC_MUTATOR_COUNT
  return n;
}();

/// Stable operator name (the X-macro identifier), for fuzz reports.
[[nodiscard]] std::string_view mutator_name(Mutator m);

/// Bounds on the explored configuration space. The defaults match the
/// campaign grids: systems up to t = 5, n up to 2t+9, small seeds so the
/// shrinker has room to move.
struct MutationLimits {
  std::uint32_t max_t = 5;
  std::uint32_t max_extra_n = 8;  // n <= 2t+1 + max_extra_n
  std::uint64_t max_fresh_seed = std::uint64_t{1} << 16;
  std::uint64_t max_value = 8;
};

/// Applies one operator to `base`, drawing all randomness from `rng` and
/// splice material from `donor` (another corpus entry; may equal base).
/// When the drawn operator cannot apply (e.g. f_down at f = 0), the next
/// applicable one in catalogue order is used instead, so every call
/// produces exactly one mutant. `*used` reports the operator applied.
[[nodiscard]] CellSpec mutate(const CellSpec& base, const CellSpec& donor,
                              Rng& rng, Mutator* used,
                              const MutationLimits& limits = {});

/// Deterministic seed corpus: every protocol x every registry adversary x
/// f in {0, 1, t} at the minimal system n = 2t+1. The fuzzer starts here
/// and mutates outward.
[[nodiscard]] std::vector<CellSpec> fuzz_seed_corpus(std::uint32_t t = 2,
                                                     std::uint64_t value = 7,
                                                     std::uint64_t seed = 1);

}  // namespace mewc::check
