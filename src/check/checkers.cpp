#include "check/checkers.hpp"

#include <string>

namespace mewc::check {

namespace {

std::string pid_str(ProcessId p) { return std::to_string(p); }

std::string value_str(const Value& v) {
  return v.is_bottom() ? "⊥" : std::to_string(v.raw);
}

std::string decision_str(const WireValue& w) { return value_str(w.value); }

/// Applies `fn(p)` to every correct, decided process.
template <typename Fn>
void for_each_decided(const RunRecord& r, Fn fn) {
  for (ProcessId p = 0; p < r.cell.n; ++p) {
    if (p < r.corrupted.size() && r.corrupted[p]) continue;
    if (p < r.decided.size() && r.decided[p]) fn(p);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Agreement
// ---------------------------------------------------------------------------

void AgreementChecker::check(const RunRecord& record, const CheckerOptions&,
                             std::vector<Violation>& out) const {
  bool seen = false;
  WireValue first;
  ProcessId first_p = kNoProcess;
  for_each_decided(record, [&](ProcessId p) {
    if (!seen) {
      seen = true;
      first = record.decisions[p];
      first_p = p;
    } else if (!(first == record.decisions[p])) {
      out.push_back({name(), "process " + pid_str(first_p) + " decided " +
                                 decision_str(first) + " but process " +
                                 pid_str(p) + " decided " +
                                 decision_str(record.decisions[p])});
    }
  });
}

// ---------------------------------------------------------------------------
// Validity
// ---------------------------------------------------------------------------

void ValidityChecker::check(const RunRecord& record, const CheckerOptions&,
                            std::vector<Violation>& out) const {
  const Protocol proto = record.cell.protocol;

  if (proto == Protocol::kBb || proto == Protocol::kDsBb) {
    // BB validity: a correct sender's value is the only legal decision.
    if (!record.sender_correct()) return;
    const Value sent = record.inputs[record.sender].value;
    for_each_decided(record, [&](ProcessId p) {
      if (record.decisions[p].value != sent) {
        out.push_back({name(), "correct sender " + pid_str(record.sender) +
                                   " sent " + value_str(sent) +
                                   " but process " + pid_str(p) +
                                   " decided " +
                                   decision_str(record.decisions[p])});
      }
    });
    return;
  }

  if (proto == Protocol::kStrongBa) {
    // Binary protocol: decisions outside {0, 1} are never legal.
    for_each_decided(record, [&](ProcessId p) {
      if (record.decisions[p].value.raw > 1) {
        out.push_back({name(), "process " + pid_str(p) +
                                   " decided non-binary value " +
                                   decision_str(record.decisions[p])});
      }
    });
  }

  // Unanimity: strong BA and A_fallback guarantee strong unanimity for any
  // f <= t; weak BA's premise ("ALL processes share the input") only holds
  // at f = 0, where weak and strong unanimity coincide.
  if (proto == Protocol::kWeakBa && record.f() != 0) return;
  Value common = kBottom;
  if (!record.unanimous_correct_inputs(&common)) return;
  for_each_decided(record, [&](ProcessId p) {
    if (record.decisions[p].value != common) {
      out.push_back({name(), "unanimous correct input " + value_str(common) +
                                 " but process " + pid_str(p) + " decided " +
                                 decision_str(record.decisions[p])});
    }
  });
}

// ---------------------------------------------------------------------------
// Termination
// ---------------------------------------------------------------------------

void TerminationChecker::check(const RunRecord& record, const CheckerOptions&,
                               std::vector<Violation>& out) const {
  for (ProcessId p = 0; p < record.cell.n; ++p) {
    if (p < record.corrupted.size() && record.corrupted[p]) continue;
    if (p >= record.decided.size() || !record.decided[p]) {
      out.push_back({name(), "correct process " + pid_str(p) +
                                 " never decided within " +
                                 std::to_string(record.rounds) + " rounds"});
    }
  }
}

// ---------------------------------------------------------------------------
// Word budget (Table 1)
// ---------------------------------------------------------------------------

void WordBudgetChecker::check(const RunRecord& record,
                              const CheckerOptions& opts,
                              std::vector<Violation>& out) const {
  const Protocol proto = record.cell.protocol;
  const std::uint64_t n = record.cell.n;
  const std::uint64_t f = record.f();
  const std::uint64_t words = record.meter.words_correct;

  if (proto == Protocol::kBb || proto == Protocol::kWeakBa) {
    // The adaptive bound only binds while enough processes stay correct to
    // fill a commit quorum; outside that regime the fallback (and its
    // higher cost) is legitimate.
    if (!record.adaptive()) return;
    const std::uint64_t budget = opts.word_budget_c * n * (f + 1);
    if (words > budget) {
      out.push_back({name(), "adaptive regime but words_correct = " +
                                 std::to_string(words) + " > C*n*(f+1) = " +
                                 std::to_string(budget) + " (C = " +
                                 std::to_string(opts.word_budget_c) + ")"});
    }
    if (record.any_fallback) {
      out.push_back(
          {name(), "fallback entered despite the adaptive regime holding"});
    }
    return;
  }

  if (proto == Protocol::kStrongBa && f == 0) {
    // Failure-free fast path: O(n) words, no fallback.
    const std::uint64_t budget = opts.word_budget_c * n;
    if (words > budget) {
      out.push_back({name(), "failure-free run but words_correct = " +
                                 std::to_string(words) + " > C*n = " +
                                 std::to_string(budget)});
    }
    if (record.any_fallback) {
      out.push_back({name(), "fallback entered in a failure-free run"});
    }
  }
  // A_fallback standalone and Dolev-Strong are the expensive baselines; no
  // adaptive bound applies.
}

// ---------------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------------

void CertificateChecker::check(const RunRecord& record, const CheckerOptions&,
                               std::vector<Violation>& out) const {
  for (const auto& c : record.certs) {
    if (!c.verified) {
      out.push_back({name(), "round " + std::to_string(c.round) +
                                 ": correct process " + pid_str(c.from) +
                                 " sent " + c.kind + "." + c.field +
                                 " whose certificate failed verification"});
    } else if (c.k < c.required_k) {
      out.push_back({name(), "round " + std::to_string(c.round) +
                                 ": correct process " + pid_str(c.from) +
                                 " sent " + c.kind + "." + c.field +
                                 " with threshold k = " + std::to_string(c.k) +
                                 " < required " +
                                 std::to_string(c.required_k)});
    }
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::vector<std::unique_ptr<Checker>> default_checkers() {
  std::vector<std::unique_ptr<Checker>> cs;
  cs.push_back(std::make_unique<AgreementChecker>());
  cs.push_back(std::make_unique<ValidityChecker>());
  cs.push_back(std::make_unique<TerminationChecker>());
  cs.push_back(std::make_unique<WordBudgetChecker>());
  cs.push_back(std::make_unique<CertificateChecker>());
  return cs;
}

std::vector<Violation> run_checkers(const RunRecord& record,
                                    const CheckerOptions& opts) {
  std::vector<Violation> violations;
  for (const auto& c : default_checkers()) {
    c->check(record, opts, violations);
  }
  return violations;
}

}  // namespace mewc::check
