#include "check/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mewc::check::json {

namespace {

const Value& null_value() {
  static const Value kNull;
  return kNull;
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (at_end() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(Value& out) {
    if (!consume('{')) return false;
    Object obj;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      out = Value(std::move(obj));
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Value v;
      if (!parse_value(v)) return false;
      obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        out = Value(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    if (!consume('[')) return false;
    Array arr;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      out = Value(std::move(arr));
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        out = Value(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (at_end() || peek() != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (at_end()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Grid/replay files are ASCII in practice; keep escapes for the
            // BMP as a literal best effort.
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Value(std::move(s));
    return true;
  }

  bool parse_bool(Value& out) {
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      out = Value(true);
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      out = Value(false);
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null(Value& out) {
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      out = Value();
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '-' || peek() == '+')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out = Value(d);
    return true;
  }
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  // Integers (the common case here) print without a fraction.
  if (d == std::floor(d) && std::abs(d) < 9.2e18) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

const Value& Value::operator[](std::string_view key) const {
  if (type_ == Type::kObject) {
    auto it = obj_.find(std::string(key));
    if (it != obj_.end()) return it->second;
  }
  return null_value();
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(out, num_); break;
    case Type::kString: dump_string(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        dump_string(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Value v;
  if (!p.parse_value(v)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr) {
      *error = "trailing content at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return v;
}

std::optional<Value> read_file(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return parse(text, error);
}

bool write_file(const std::string& path, const Value& v) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string text = v.dump(2) + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace mewc::check::json
