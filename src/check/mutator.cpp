#include "check/mutator.hpp"

#include <algorithm>

#include "check/adversary_registry.hpp"

namespace mewc::check {

namespace {

constexpr std::string_view kMutatorNames[] = {
#define MEWC_MUTATOR_NAME(name) #name,
    MEWC_MUTATOR_LIST(MEWC_MUTATOR_NAME)
#undef MEWC_MUTATOR_NAME
};

bool applicable(Mutator m, const CellSpec& cell, const MutationLimits& lim) {
  switch (m) {
    case Mutator::adversary_swap:
      return adversary_names().size() > 1;
    case Mutator::protocol_swap:
      return all_protocols().size() > 1;
    case Mutator::f_up:
      return cell.f < cell.t;
    case Mutator::f_down:
      return cell.f > 0;
    case Mutator::t_up:
      return cell.t < lim.max_t;
    case Mutator::t_down:
      return cell.t > 1;
    case Mutator::n_widen:
      return cell.n + 2 <= 2 * cell.t + 1 + lim.max_extra_n;
    case Mutator::n_narrow:
      return cell.n >= 2 * cell.t + 3;
    case Mutator::seed_fresh:
    case Mutator::splice_donor:
    case Mutator::value_tweak:
    case Mutator::codec_toggle:
    case Mutator::backend_toggle:
      return true;
  }
  return false;
}

void apply(Mutator m, CellSpec& cell, const CellSpec& donor, Rng& rng,
           const MutationLimits& lim) {
  switch (m) {
    case Mutator::adversary_swap: {
      const auto& names = adversary_names();
      std::size_t idx = rng.below(names.size());
      if (names[idx] == cell.adversary) idx = (idx + 1) % names.size();
      cell.adversary = names[idx];
      break;
    }
    case Mutator::protocol_swap: {
      const auto& protos = all_protocols();
      std::size_t idx = rng.below(protos.size());
      if (protos[idx] == cell.protocol) idx = (idx + 1) % protos.size();
      cell.protocol = protos[idx];
      break;
    }
    case Mutator::f_up:
      ++cell.f;
      break;
    case Mutator::f_down:
      --cell.f;
      break;
    case Mutator::t_up: {
      const std::uint32_t extra = cell.n - (2 * cell.t + 1);
      ++cell.t;
      cell.n = 2 * cell.t + 1 + extra;
      break;
    }
    case Mutator::t_down: {
      const std::uint32_t extra = cell.n - (2 * cell.t + 1);
      --cell.t;
      cell.n = 2 * cell.t + 1 + extra;
      cell.f = std::min(cell.f, cell.t);
      break;
    }
    case Mutator::n_widen:
      cell.n += 2;
      break;
    case Mutator::n_narrow:
      cell.n -= 2;
      break;
    case Mutator::seed_fresh:
      cell.seed = rng.below(lim.max_fresh_seed);
      break;
    case Mutator::splice_donor:
      switch (rng.below(3)) {
        case 0:
          cell.adversary = donor.adversary;
          break;
        case 1:
          cell.seed = donor.seed;
          break;
        default:
          cell.f = std::min(donor.f, cell.t);
          break;
      }
      break;
    case Mutator::value_tweak:
      cell.value = rng.below(lim.max_value);
      break;
    case Mutator::codec_toggle:
      cell.codec_roundtrip = !cell.codec_roundtrip;
      break;
    case Mutator::backend_toggle:
      switch (cell.backend) {
        case ThresholdBackend::kSim:
          cell.backend = ThresholdBackend::kShamir;
          break;
        case ThresholdBackend::kShamir:
          cell.backend = ThresholdBackend::kReal;
          break;
        case ThresholdBackend::kReal:
          cell.backend = ThresholdBackend::kSim;
          break;
      }
      break;
  }
}

}  // namespace

std::string_view mutator_name(Mutator m) {
  return kMutatorNames[static_cast<std::size_t>(m)];
}

CellSpec mutate(const CellSpec& base, const CellSpec& donor, Rng& rng,
                Mutator* used, const MutationLimits& limits) {
  CellSpec cell = base;
  const std::size_t drawn = rng.below(kMutatorCount);
  for (std::size_t probe = 0; probe < kMutatorCount; ++probe) {
    const auto op = static_cast<Mutator>((drawn + probe) % kMutatorCount);
    if (!applicable(op, cell, limits)) continue;
    apply(op, cell, donor, rng, limits);
    if (used != nullptr) *used = op;
    return cell;
  }
  // Unreachable (seed_fresh is always applicable), but keep the contract.
  cell.seed = rng.below(limits.max_fresh_seed);
  if (used != nullptr) *used = Mutator::seed_fresh;
  return cell;
}

std::vector<CellSpec> fuzz_seed_corpus(std::uint32_t t, std::uint64_t value,
                                       std::uint64_t seed) {
  std::vector<CellSpec> cells;
  const std::uint32_t fs[] = {0, 1, t};
  for (const Protocol proto : all_protocols()) {
    for (const std::string& adv : adversary_names()) {
      std::uint32_t prev = ~0u;
      for (const std::uint32_t f : fs) {
        if (f == prev || f > t) continue;  // dedup {0, 1, t} at small t
        prev = f;
        // Three consecutive seeds: seed-parameterized strategies (e.g.
        // alg5-withhold picks its mode via seed % 3) expose every behavior
        // from the seed sweep alone.
        for (std::uint64_t s = seed; s < seed + 3; ++s) {
          CellSpec cell;
          cell.protocol = proto;
          cell.n = 2 * t + 1;
          cell.t = t;
          cell.f = f;
          cell.adversary = adv;
          cell.seed = s;
          cell.backend = ThresholdBackend::kSim;
          cell.codec_roundtrip = false;
          cell.value = value;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

}  // namespace mewc::check
