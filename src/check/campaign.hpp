// Seed-sweep campaign engine: enumerates (protocol, n, t, f, adversary,
// seed) cells from a declarative grid, runs each through the harness
// (optionally across worker threads — runs share no mutable state), applies
// every invariant checker, and aggregates a JSON report with pass/fail
// counts and word-complexity percentiles per protocol x adversary group.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/checkers.hpp"
#include "check/coverage.hpp"
#include "check/json.hpp"
#include "check/record.hpp"

namespace mewc::check {

/// One (n, t) system size. n == 0 means "derive 2t+1".
struct GridSize {
  std::uint32_t n = 0;
  std::uint32_t t = 0;
};

/// Declarative campaign grid: the cross product of every axis, minus cells
/// with f > t. Parsed from JSON (see tools/grids/*.json).
struct GridSpec {
  std::vector<Protocol> protocols;
  std::vector<GridSize> sizes;
  std::vector<std::uint32_t> fs = {0};
  std::vector<std::string> adversaries = {"none"};
  std::vector<std::uint64_t> seeds = {0x5e7};
  /// Crypto backends to sweep ("backend": "sim" in JSON, or "backends":
  /// ["sim", "real"] for a cross-backend axis). Every other axis is crossed
  /// with this one, so one grid file can pin ideal <-> real equivalence.
  std::vector<ThresholdBackend> backends = {ThresholdBackend::kSim};
  /// Executor implementations to sweep ("executor": "event" in JSON, or
  /// "executors": ["lockstep", "event"] for a cross-executor axis). Both
  /// kinds are behaviour-identical by contract; sweeping both turns every
  /// grid into an equivalence check of the event-driven path.
  std::vector<ExecutorKind> executors = {ExecutorKind::kLockstep};
  bool codec_roundtrip = false;
  std::uint64_t value = 7;
  CheckerOptions checkers;
  /// Keep full message streams (memory-heavy; campaigns default to off —
  /// the shrinker re-runs the failing cell with recording on).
  bool record_messages = false;

  /// Materializes the cell list, resolving n == 0 sizes and skipping
  /// f > t combinations.
  [[nodiscard]] std::vector<CellSpec> enumerate() const;

  /// Parses the JSON grid format; returns false with a diagnostic in
  /// *error on malformed or unknown fields/names.
  [[nodiscard]] static bool from_json(const json::Value& v, GridSpec* out,
                                      std::string* error);
};

/// Outcome of one cell: the violations (if any) plus the headline numbers
/// kept for aggregation (the full record is dropped to bound memory).
struct CellResult {
  CellSpec cell;
  std::vector<Violation> violations;
  std::uint64_t words_correct = 0;
  std::uint32_t f_observed = 0;
  bool any_fallback = false;
  bool adaptive = false;
  /// Payload-arena allocations attributed to this cell alone (a per-cell
  /// pool::StatsScope delta, not the worker thread's lifetime totals).
  std::uint64_t pool_reused = 0;
  std::uint64_t pool_fresh = 0;
  /// Paper-line coverage of this cell alone (a per-cell cov::CoverageScope,
  /// same no-bleed discipline as the pool stats).
  cov::Bitmap coverage;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

struct CampaignReport {
  std::vector<CellResult> results;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_passed = 0;

  [[nodiscard]] std::uint64_t cells_failed() const {
    return cells_total - cells_passed;
  }
  [[nodiscard]] const CellResult* first_failure() const;
  /// Full JSON report: summary, per protocol x adversary word percentiles,
  /// every failure with its violations.
  [[nodiscard]] json::Value to_json() const;
};

/// Runs the whole grid. `jobs` worker threads (0: hardware concurrency).
/// `on_cell`, when set, is called after each cell completes (any thread —
/// serialized by the engine) for progress reporting.
[[nodiscard]] CampaignReport run_campaign(
    const GridSpec& grid, unsigned jobs = 0,
    const std::function<void(const CellResult&)>& on_cell = nullptr);

}  // namespace mewc::check
