#include "check/shrink.hpp"

#include <algorithm>

#include "check/adversary_registry.hpp"
#include "check/runner.hpp"

namespace mewc::check {

namespace {

bool fails_same(const CellSpec& cell, const CheckerOptions& opts,
                const std::string& checker) {
  const auto violations = violations_of(cell, opts);
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.checker == checker; });
}

/// Candidate moves, in preference order: each strictly reduces the cell
/// (so the greedy loop terminates), larger reductions first.
std::vector<CellSpec> candidates(const CellSpec& cell) {
  std::vector<CellSpec> out;
  const auto push = [&](CellSpec c) { out.push_back(std::move(c)); };

  // Smaller system: drop t (with the matching minimal n), keep f legal.
  if (cell.t >= 2) {
    CellSpec c = cell;
    c.t = cell.t - 1;
    c.n = n_for_t(c.t);
    c.f = std::min(cell.f, c.t);
    push(c);
  }
  // Narrow a wide system toward n = 2t+1 without touching t.
  if (cell.n >= 2 * cell.t + 3) {
    CellSpec c = cell;
    c.n = cell.n - 2;
    push(c);
  }
  // Bisect, then decrement, the corruption budget.
  if (cell.f >= 2) {
    CellSpec c = cell;
    c.f = cell.f / 2;
    push(c);
  }
  if (cell.f >= 1) {
    CellSpec c = cell;
    c.f = cell.f - 1;
    push(c);
  }
  // Strictly smaller seeds only, so seed moves cannot cycle.
  for (const std::uint64_t s :
       {std::uint64_t{1}, cell.seed / 2, cell.seed - 1}) {
    if (s < cell.seed) {
      CellSpec c = cell;
      c.seed = s;
      push(c);
    }
  }
  return out;
}

}  // namespace

std::vector<Violation> violations_of(const CellSpec& cell,
                                     const CheckerOptions& opts) {
  RunOptions run_opts;
  run_opts.record_messages = false;
  return run_checkers(run_cell(cell, run_opts), opts);
}

CellShrink shrink_cell(const CellSpec& start,
                       const std::function<bool(const CellSpec&)>& keep,
                       std::uint32_t max_runs) {
  CellShrink result;
  result.minimal = start;

  bool progressed = true;
  while (progressed && result.runs < max_runs) {
    progressed = false;
    for (const CellSpec& candidate : candidates(result.minimal)) {
      if (result.runs >= max_runs) break;
      ++result.runs;
      if (keep(candidate)) {
        result.minimal = candidate;
        ++result.steps;
        progressed = true;
        break;  // restart from the reduced cell
      }
    }
  }
  return result;
}

ShrinkResult shrink_failure(const CellSpec& failing,
                            const CheckerOptions& opts,
                            const ShrinkOptions& shrink) {
  ShrinkResult result;
  result.minimal = failing;

  if (const auto vs = violations_of(failing, opts); !vs.empty()) {
    result.checker = vs.front().checker;
  }
  result.runs = 1;
  if (result.checker.empty()) return result;  // not actually failing

  const auto keep = [&](const CellSpec& candidate) {
    return fails_same(candidate, opts, result.checker);
  };
  const std::uint32_t budget =
      shrink.max_runs > result.runs ? shrink.max_runs - result.runs : 0;
  const CellShrink inner = shrink_cell(failing, keep, budget);
  result.minimal = inner.minimal;
  result.runs += inner.runs;
  result.steps = inner.steps;
  return result;
}

json::Value Replay::to_json() const {
  json::Object cell_json;
  cell_json["protocol"] = json::Value(protocol_name(cell.protocol));
  cell_json["n"] = json::Value(cell.n);
  cell_json["t"] = json::Value(cell.t);
  cell_json["f"] = json::Value(cell.f);
  cell_json["adversary"] = json::Value(cell.adversary);
  cell_json["seed"] = json::Value(cell.seed);
  cell_json["backend"] = json::Value(std::string(backend_name(cell.backend)));
  cell_json["codec_roundtrip"] = json::Value(cell.codec_roundtrip);
  // Only serialized when non-default so pre-existing replay files (which
  // predate the executor axis) keep round-tripping byte-identically.
  if (cell.executor != ExecutorKind::kLockstep) {
    cell_json["executor"] =
        json::Value(std::string(executor_kind_name(cell.executor)));
  }
  cell_json["value"] = json::Value(cell.value);

  json::Object checkers_json;
  checkers_json["word_budget_c"] = json::Value(checkers.word_budget_c);

  json::Array expected_json;
  for (const auto& v : expected) {
    json::Object vo;
    vo["checker"] = json::Value(v.checker);
    vo["detail"] = json::Value(v.detail);
    expected_json.push_back(json::Value(std::move(vo)));
  }

  json::Object root;
  root["mewc_replay"] = json::Value(1);
  root["cell"] = json::Value(std::move(cell_json));
  root["checkers"] = json::Value(std::move(checkers_json));
  root["violations"] = json::Value(std::move(expected_json));
  return json::Value(std::move(root));
}

bool Replay::from_json(const json::Value& v, Replay* out, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (v["mewc_replay"].as_u64() != 1) {
    return fail("not a mewc replay file (missing mewc_replay: 1)");
  }
  const auto& c = v["cell"];
  if (!c.is_object()) return fail("replay.cell must be an object");

  Replay replay;
  const auto proto = parse_protocol(c["protocol"].as_string());
  if (!proto) return fail("unknown protocol in replay cell");
  replay.cell.protocol = *proto;
  replay.cell.n = static_cast<std::uint32_t>(c["n"].as_u64());
  replay.cell.t = static_cast<std::uint32_t>(c["t"].as_u64());
  replay.cell.f = static_cast<std::uint32_t>(c["f"].as_u64());
  replay.cell.adversary = c["adversary"].as_string();
  replay.cell.seed = c["seed"].as_u64();
  replay.cell.backend =
      parse_backend(c["backend"].as_string()).value_or(ThresholdBackend::kSim);
  replay.cell.codec_roundtrip = c["codec_roundtrip"].as_bool();
  if (!c["executor"].is_null()) {
    const auto kind = parse_executor_kind(c["executor"].as_string());
    if (!kind) return fail("unknown executor in replay cell");
    replay.cell.executor = *kind;
  }
  replay.cell.value = c["value"].as_u64(7);
  if (replay.cell.t == 0 || replay.cell.n < 2 * replay.cell.t + 1) {
    return fail("replay cell needs t >= 1 and n >= 2t+1");
  }
  const auto& names = adversary_names();
  if (std::find(names.begin(), names.end(), replay.cell.adversary) ==
      names.end()) {
    return fail("unknown adversary in replay cell");
  }

  if (const auto& ck = v["checkers"]; ck.is_object()) {
    replay.checkers.word_budget_c = ck["word_budget_c"].as_u64(30);
  }
  for (const auto& vj : v["violations"].as_array()) {
    replay.expected.push_back(
        {vj["checker"].as_string(), vj["detail"].as_string()});
  }

  *out = std::move(replay);
  return true;
}

bool Replay::save(const std::string& path) const {
  return json::write_file(path, to_json());
}

bool Replay::load(const std::string& path, Replay* out, std::string* error) {
  const auto v = json::read_file(path, error);
  if (!v) return false;
  return from_json(*v, out, error);
}

}  // namespace mewc::check
