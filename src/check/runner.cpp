#include "check/runner.hpp"

#include <map>
#include <utility>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "ba/weak_ba/messages.hpp"
#include "check/adversary_registry.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace mewc::check {

namespace {

/// Live certificate scanner: verifies every threshold certificate a correct
/// process puts on the wire against the run's schemes, while the
/// ThresholdFamily still exists. Only correct senders are scanned —
/// receivers are expected to reject Byzantine garbage, so it is not an
/// invariant violation.
class CertScanner {
 public:
  CertScanner(std::uint32_t n, std::uint32_t t,
              std::vector<CertObservation>& out)
      : n_(n), t_(t), out_(out) {}

  void attach(const ThresholdFamily& family) { family_ = &family; }

  /// Verifies everything still queued for batch verification. Must run
  /// while the family is alive (RunSpec::on_teardown).
  void flush() {
    for (auto& [k, group] : pending_) flush_k(k);
  }

  void scan(const Message& m, bool correct) {
    if (!correct) return;
    const std::string kind = m.body->kind();

    if (const auto* p = payload_cast<wba::ProposeMsg>(m.body)) {
      scan_wire_value(m, kind, p->value);
    } else if (const auto* c = payload_cast<wba::CommitMsg>(m.body)) {
      observe(m, kind, "qc", c->qc, commit_quorum(n_, t_));
      scan_wire_value(m, kind, c->value);
    } else if (const auto* fz = payload_cast<wba::FinalizedMsg>(m.body)) {
      observe(m, kind, "qc", fz->qc, commit_quorum(n_, t_));
      scan_wire_value(m, kind, fz->value);
    } else if (const auto* h = payload_cast<wba::HelpMsg>(m.body)) {
      observe(m, kind, "decide_proof", h->decide_proof,
              commit_quorum(n_, t_));
      scan_wire_value(m, kind, h->value);
    } else if (const auto* fb = payload_cast<wba::FallbackMsg>(m.body)) {
      observe(m, kind, "fallback_qc", fb->fallback_qc, t_ + 1);
      if (fb->has_decision) {
        observe(m, kind, "decide_proof", fb->decide_proof,
                commit_quorum(n_, t_));
        scan_wire_value(m, kind, fb->value);
      }
    } else if (const auto* pc = payload_cast<sba::ProposeCertMsg>(m.body)) {
      observe(m, kind, "qc", pc->qc, t_ + 1);
    } else if (const auto* dc = payload_cast<sba::DecideCertMsg>(m.body)) {
      observe(m, kind, "qc", dc->qc, n_);
    } else if (const auto* sf = payload_cast<sba::FallbackMsg>(m.body)) {
      if (sf->has_decision) observe(m, kind, "proof", sf->proof, n_);
    } else if (const auto* sv = payload_cast<bb::SenderValueMsg>(m.body)) {
      scan_wire_value(m, kind, sv->value);
    } else if (const auto* rv = payload_cast<bb::ReplyValueMsg>(m.body)) {
      scan_wire_value(m, kind, rv->value);
    } else if (const auto* lv = payload_cast<bb::LeaderValueMsg>(m.body)) {
      scan_wire_value(m, kind, lv->value);
    }
    // ds.relay is deliberately NOT scanned: Dolev-Strong acceptance
    // verifies the signature chain but treats the carried value as opaque,
    // so correct processes legitimately relay Byzantine-originated values
    // whose embedded certificates never verify. The decision predicate
    // filters those at extraction time, not at relay time.
  }

 private:
  /// Certified values embedded in a WireValue (BB idk certificates) use the
  /// (t+1, n) scheme at minimum.
  void scan_wire_value(const Message& m, const std::string& kind,
                       const WireValue& w) {
    if (w.prov == Provenance::kCertified && w.cert) {
      observe(m, kind, "value.cert", *w.cert, t_ + 1);
    }
  }

  void observe(const Message& m, const std::string& kind,
               const char* field, const ThresholdSig& sig,
               std::uint32_t required_k) {
    CertObservation obs;
    obs.round = m.round;
    obs.from = m.from;
    obs.kind = kind;
    obs.field = field;
    obs.k = sig.k;
    obs.required_k = required_k;
    // scheme() aborts on unprovisioned k; a certificate claiming a foreign
    // threshold is unverifiable, which the checker flags.
    const bool provisioned = family_ != nullptr &&
                             (sig.k == t_ + 1 ||
                              sig.k == commit_quorum(n_, t_) || sig.k == n_);
    if (provisioned && family_->backend() == ThresholdBackend::kReal) {
      // Pairing verification is the expensive path: queue the certificate
      // and settle a whole batch with one random-weight check (two pairings
      // per batch instead of two per certificate), falling back to
      // individual verification only when a batch fails. The observation is
      // recorded now so out_ keeps wire order; verified lands at flush.
      out_.push_back(obs);
      auto& group = pending_[sig.k];
      group.push_back({sig, out_.size() - 1});
      if (group.size() >= kBatch) flush_k(sig.k);
      return;
    }
    obs.verified = provisioned && family_->scheme(sig.k).verify(sig);
    out_.push_back(obs);
  }

  void flush_k(std::uint32_t k) {
    auto& group = pending_[k];
    if (group.empty()) return;
    const auto* real =
        dynamic_cast<const RealThreshold*>(&family_->scheme(k));
    std::vector<ThresholdSig> sigs;
    sigs.reserve(group.size());
    for (const Queued& q : group) sigs.push_back(q.sig);
    if (real != nullptr && real->verify_batch(sigs)) {
      for (const Queued& q : group) out_[q.index].verified = true;
    } else {
      // At least one offender (or no batch path): identify each
      // certificate individually — same verdicts, just without the
      // batching discount.
      for (const Queued& q : group) {
        out_[q.index].verified = family_->scheme(k).verify(q.sig);
      }
    }
    group.clear();
  }

  /// A certificate awaiting batch verification and where its observation
  /// landed in out_.
  struct Queued {
    ThresholdSig sig;
    std::size_t index;
  };
  static constexpr std::size_t kBatch = 16;

  std::uint32_t n_;
  std::uint32_t t_;
  const ThresholdFamily* family_ = nullptr;
  std::vector<CertObservation>& out_;
  std::map<std::uint32_t, std::vector<Queued>> pending_;
};

std::vector<bool> corrupted_mask(std::uint32_t n,
                                 const std::vector<ProcessId>& corrupted) {
  std::vector<bool> mask(n, false);
  for (ProcessId p : corrupted) {
    if (p < n) mask[p] = true;
  }
  return mask;
}

}  // namespace

std::vector<WireValue> derive_inputs(const CellSpec& cell) {
  const harness::DriverTraits tr = protocol_driver(cell.protocol).traits();
  std::vector<WireValue> inputs;
  inputs.reserve(cell.n);
  Rng rng(hash_combine(cell.seed, 0x1497075a11ad0beeULL));

  if (tr.single_sender) {
    // Only the designated sender's input matters; keep everyone unanimous.
    inputs.assign(cell.n, WireValue::plain(Value(cell.value)));
  } else if (tr.binary_values) {
    // Binary inputs; half the seeds unanimous, half independent coins.
    if (rng.chance(1, 2)) {
      inputs.assign(cell.n, WireValue::plain(Value(cell.value & 1)));
    } else {
      for (std::uint32_t i = 0; i < cell.n; ++i) {
        inputs.push_back(WireValue::plain(Value(rng.below(2))));
      }
    }
  } else {
    if (rng.chance(1, 2)) {
      inputs.assign(cell.n, WireValue::plain(Value(cell.value)));
    } else {
      for (std::uint32_t i = 0; i < cell.n; ++i) {
        inputs.push_back(WireValue::plain(Value(1 + rng.below(3))));
      }
    }
  }
  return inputs;
}

RunRecord run_cell(const CellSpec& cell, const RunOptions& opts) {
  MEWC_CHECK_MSG(cell.n >= 2 * cell.t + 1, "cell needs n >= 2t+1");

  RunRecord record;
  record.cell = cell;
  record.inputs = derive_inputs(cell);

  auto spec = harness::RunSpec::with(cell.n, cell.t);
  spec.seed = cell.seed;
  spec.backend = cell.backend;
  spec.codec_roundtrip = cell.codec_roundtrip;
  spec.executor = cell.executor;

  // Trace-tool convention: the designated BB sender is the highest id, so
  // crash-style adversaries eating low ids leave it correct.
  const auto sender = static_cast<ProcessId>(cell.n - 1);

  CertScanner scanner(cell.n, cell.t, record.certs);
  spec.on_setup = [&scanner](const ThresholdFamily& family) {
    scanner.attach(family);
  };
  spec.on_teardown = [&scanner](const ThresholdFamily&) { scanner.flush(); };
  const bool keep = opts.record_messages;
  spec.recorder = [&record, &scanner, keep](const Message& m, bool correct) {
    if (keep) record.log.observe(m, correct);
    scanner.scan(m, correct);
  };

  AdversaryParams params;
  params.protocol = cell.protocol;
  params.n = cell.n;
  params.t = cell.t;
  params.f = cell.f;
  params.instance = spec.instance;
  params.seed = cell.seed;
  params.value = cell.value;
  params.sender = sender;
  auto adversary = make_adversary(cell.adversary, params);
  MEWC_CHECK_MSG(adversary != nullptr, "unknown adversary name");

  const harness::ProtocolDriver& driver = protocol_driver(cell.protocol);
  harness::RunInputs inputs;
  inputs.values = record.inputs;
  if (driver.traits().single_sender) {
    inputs.sender = sender;
    record.sender = sender;
  }

  const harness::RunReport res = driver.run(spec, inputs, *adversary);
  record.meter = res.meter;
  record.rounds = res.rounds;
  record.signatures_issued = res.signatures_issued;
  record.corrupted = corrupted_mask(cell.n, res.corrupted);
  record.any_fallback = res.any_fallback;
  record.decided = res.decided;
  record.decisions = res.decisions;
  return record;
}

}  // namespace mewc::check
