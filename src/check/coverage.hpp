// Deterministic protocol coverage map: a fixed-size hit-count table over a
// closed set of annotated branch sites, each named after the paper line it
// implements (alg3_line21_fallback_echo = Algorithm 3, line 21, the
// fallback-certificate echo). The protocol modules mark the load-bearing
// branches of Algorithms 1-5 with MEWC_COV(site); a campaign cell or fuzz
// run installs a CoverageScope and reads back exactly which paper lines the
// run reached.
//
// Design constraints (mirroring pool::StatsScope in net/arena.hpp):
//  * allocation-free: the map is a fixed std::array owned by the scope;
//    recording a hit is an increment through a thread-local pointer.
//  * zero-cost when disabled: with no scope installed the macro is a
//    thread-local load and a predictable not-taken branch — the round loop
//    stays heap-quiet and within perf-regression noise.
//  * deterministic: a CellSpec fully determines the run, so it fully
//    determines the map; two runs of the same cell produce identical maps.
//  * thread-scoped: campaign workers run whole cells single-threaded, so a
//    per-thread active map gives per-cell coverage with no bleed between
//    workers. Scopes nest (the inner scope shadows, then restores).
//
// This header is dependency-free on purpose: the protocol modules under
// src/ba include it, and it must not drag the check subsystem into them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mewc::cov {

// The annotated-site list, one X() per site, grouped by paper algorithm.
// Naming convention: alg<K>_line<L>_<slug> points at Algorithm K, line L of
// the paper (arXiv v2 numbering, the same the lemma tests use);
// bbvalid_* covers the BB_valid predicate (Section 5), afb_* the A_fallback
// Dolev-Strong execution. Sites provably unreachable by any adversary
// (e.g. the Lemma 21 liveness hole in weak_ba.cpp) are deliberately NOT
// annotated, so "every site covered" is an achievable bar.
#define MEWC_COV_SITE_LIST(X)                                        \
  /* Algorithm 1 — Byzantine Broadcast wrapper */                    \
  X(alg1_line2_sender_broadcast)  /* sender signs + broadcasts */    \
  X(alg1_line4_adopt_sender_value)                                   \
  X(alg1_line9_enter_weak_ba)                                        \
  X(alg1_line11_decide_signed)    /* BA decision carries sender sig */\
  X(alg1_line13_decide_bottom)                                       \
  /* Algorithm 2 — BB vetting phase */                               \
  X(alg2_line15_silent_phase)     /* leader has a value: stays quiet */\
  X(alg2_line16_help_request)                                        \
  X(alg2_line18_reply_value)                                         \
  X(alg2_line20_reply_idk)                                           \
  X(alg2_line23_leader_relay_value)                                  \
  X(alg2_line25_leader_idk_cert)                                     \
  X(alg2_line28_reject_leader_value)                                 \
  X(alg2_line29_adopt_leader_value)                                  \
  /* BB_valid predicate (Section 5) */                               \
  X(bbvalid_signed_accept)                                           \
  X(bbvalid_signed_reject)                                           \
  X(bbvalid_cert_accept)                                             \
  X(bbvalid_cert_reject)                                             \
  X(bbvalid_plain_reject)                                            \
  /* Algorithm 4 — weak BA phase */                                  \
  X(alg4_line31_propose)                                             \
  X(alg4_line31_silent_decided)   /* decided leader: silent phase */  \
  X(alg4_line34_vote_scheduled)                                      \
  X(alg4_line36_report_commit)                                       \
  X(alg4_line38_vote_collected)                                      \
  X(alg4_line39_commit_report_best)                                  \
  X(alg4_line39_reject_commit_report)                                \
  X(alg4_line37_leader_echo_commit)                                  \
  X(alg4_line41_leader_fresh_qc)                                     \
  X(alg4_line43_adopt_commit)                                        \
  X(alg4_line43_reject_commit)                                       \
  X(alg4_line49_decide_collected)                                    \
  X(alg4_line50_finalize)                                            \
  X(alg4_line52_reject_finalize)                                     \
  X(alg4_line53_decide_finalize)                                     \
  /* Algorithm 3 — weak BA tail: help round, fallback trigger */     \
  X(alg3_line5_help_request)                                         \
  X(alg3_line5_silent_decided)    /* decided: no help request */     \
  X(alg3_line8_help_reply)                                           \
  X(alg3_line10_fallback_cert_combine)                               \
  X(alg3_line13_adopt_help_decision)                                 \
  X(alg3_line13_reject_help)                                         \
  X(alg3_line16_reject_fallback_cert)                                \
  X(alg3_line17_note_fallback_cert)                                  \
  X(alg3_line19_adopt_bu)                                            \
  X(alg3_line21_fallback_echo)                                       \
  X(alg3_line22_late_decision_rebroadcast) /* NOTE-2 window resend */ \
  X(alg3_line24_enter_fallback)                                      \
  X(alg3_line26_fallback_decide)                                     \
  X(alg3_line28_fallback_decide_bottom)                              \
  /* Algorithm 5 — strong binary BA */                               \
  X(alg5_line2_send_input)                                           \
  X(alg5_line5_propose_cert)                                         \
  X(alg5_line7_accept_propose_cert)                                  \
  X(alg5_line8_decide_vote)                                          \
  X(alg5_line11_decide_cert)                                         \
  X(alg5_line14_fast_decide)                                         \
  X(alg5_line16_silent_decided)   /* decided: no alarm */            \
  X(alg5_line17_alarm)                                               \
  X(alg5_line20_echo_scheduled)                                      \
  X(alg5_line23_adopt_bu)                                            \
  X(alg5_line26_echo)                                                \
  X(alg5_line28_enter_fallback)                                      \
  X(alg5_line30_slow_decide)                                         \
  /* A_fallback — Dolev-Strong execution (Momose-Ren handoff) */     \
  X(afb_broadcast_input)                                             \
  X(afb_accept)                                                      \
  X(afb_relay)                                                       \
  X(afb_reject_chain)                                                \
  X(afb_decide_majority)                                             \
  X(afb_decide_empty)

enum class Site : std::uint16_t {
#define MEWC_COV_ENUM(name) name,
  MEWC_COV_SITE_LIST(MEWC_COV_ENUM)
#undef MEWC_COV_ENUM
};

inline constexpr std::size_t kSiteCount = [] {
  std::size_t n = 0;
#define MEWC_COV_COUNT(name) ++n;
  MEWC_COV_SITE_LIST(MEWC_COV_COUNT)
#undef MEWC_COV_COUNT
  return n;
}();

/// Stable site name (the X-macro identifier), for reports and JSON.
[[nodiscard]] std::string_view site_name(Site s);

/// Reverse lookup for CLI flags like --require-site; kSiteCount when the
/// name is unknown (compare the result against kSiteCount, not Site).
[[nodiscard]] std::size_t site_index_of(std::string_view name);

/// Fixed-size hit-count table: hits[i] counts executions of site i within
/// the owning scope.
struct CoverageMap {
  std::array<std::uint32_t, kSiteCount> hits{};

  [[nodiscard]] std::uint32_t count(Site s) const {
    return hits[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::size_t sites_covered() const {
    std::size_t n = 0;
    for (const std::uint32_t h : hits) n += h != 0 ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::uint64_t total_hits() const {
    std::uint64_t n = 0;
    for (const std::uint32_t h : hits) n += h;
    return n;
  }
  [[nodiscard]] bool operator==(const CoverageMap&) const = default;
};

/// Covered-site bitmap: the coverage signal the fuzzer accumulates (hit
/// counts collapse to one bit per site, so "new coverage" means "a site no
/// prior run reached").
struct Bitmap {
  std::array<std::uint64_t, (kSiteCount + 63) / 64> words{};

  void set(Site s) {
    const auto i = static_cast<std::size_t>(s);
    words[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  [[nodiscard]] bool test(Site s) const {
    const auto i = static_cast<std::size_t>(s);
    return (words[i / 64] >> (i % 64)) & 1;
  }
  [[nodiscard]] std::size_t count() const;
  /// ORs `other` in; returns true when any previously-unset bit appeared.
  bool merge(const Bitmap& other);
  /// Bits of *this not present in `other` (an entry's novel contribution).
  [[nodiscard]] Bitmap minus(const Bitmap& other) const;
  /// True when every bit of `required` is set in *this.
  [[nodiscard]] bool covers(const Bitmap& required) const;
  [[nodiscard]] bool any() const;
  [[nodiscard]] bool operator==(const Bitmap&) const = default;
};

[[nodiscard]] Bitmap to_bitmap(const CoverageMap& map);

namespace detail {
// Active map of the calling thread; nullptr outside any CoverageScope.
extern thread_local CoverageMap* g_active;
}  // namespace detail

/// Records one execution of `s` into the calling thread's active scope;
/// no-op (one TLS load, one branch) when no scope is installed.
inline void hit(Site s) noexcept {
  CoverageMap* m = detail::g_active;
  if (m != nullptr) ++m->hits[static_cast<std::size_t>(s)];
}

/// RAII coverage collector, used exactly like pool::StatsScope: construct
/// before run_cell, read map() after. Owns its storage (no allocation),
/// installs itself as the thread's active map, restores the previous one on
/// destruction (scopes nest; the innermost wins).
class CoverageScope {
 public:
  CoverageScope() : prev_(detail::g_active) { detail::g_active = &map_; }
  ~CoverageScope() { detail::g_active = prev_; }
  CoverageScope(const CoverageScope&) = delete;
  CoverageScope& operator=(const CoverageScope&) = delete;

  [[nodiscard]] const CoverageMap& map() const { return map_; }
  [[nodiscard]] Bitmap bitmap() const { return to_bitmap(map_); }

 private:
  CoverageMap map_;
  CoverageMap* prev_;
};

}  // namespace mewc::cov

/// Branch-site annotation: MEWC_COV(alg3_line24_enter_fallback) marks the
/// enclosing branch as "Algorithm 3 line 24 executed". Compiles to a
/// thread-local pointer check; free when no CoverageScope is active.
#define MEWC_COV(site) ::mewc::cov::hit(::mewc::cov::Site::site)
