// Minimal JSON for the check subsystem: campaign grids in, campaign reports
// and replay files out. Deliberately tiny — objects, arrays, strings,
// integer/double numbers, bools, null; UTF-8 passed through untouched. No
// external dependency, which is a hard constraint of this build.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mewc::check::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Value(T num) : type_(Type::kNumber), num_(static_cast<double>(num)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool(bool dflt = false) const {
    return is_bool() ? bool_ : dflt;
  }
  [[nodiscard]] double as_double(double dflt = 0) const {
    return is_number() ? num_ : dflt;
  }
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t dflt = 0) const {
    return is_number() ? static_cast<std::uint64_t>(num_) : dflt;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const Array& as_array() const { return arr_; }
  [[nodiscard]] const Object& as_object() const { return obj_; }
  [[nodiscard]] Array& as_array() { return arr_; }
  [[nodiscard]] Object& as_object() { return obj_; }

  /// Object member lookup; returns a shared null for absent keys (and for
  /// non-objects), so chained reads of optional fields stay terse.
  [[nodiscard]] const Value& operator[](std::string_view key) const;

  /// Serializes with two-space indentation.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses `text`; returns nullopt on malformed input, with a one-line
/// diagnostic in *error when provided.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

/// Whole-file helpers. read_file returns nullopt when the file cannot be
/// read or does not parse.
[[nodiscard]] std::optional<Value> read_file(const std::string& path,
                                             std::string* error = nullptr);
[[nodiscard]] bool write_file(const std::string& path, const Value& v);

}  // namespace mewc::check::json
