// Executes one campaign cell: builds the run spec, inputs and adversary
// from the CellSpec, runs the protocol through harness::, and returns the
// RunRecord the checkers consume — including the recorded message stream
// and the live-verified certificate observations.
#pragma once

#include "check/record.hpp"

namespace mewc::check {

struct RunOptions {
  /// Keep every message (payload pointers included) in the record. Turning
  /// this off still scans certificates and computes the meter, but drops
  /// the stream — campaigns over thousands of cells want that.
  bool record_messages = true;
};

/// Deterministic per-cell input derivation: same cell, same inputs. Mixes
/// the seed so neighbouring seeds explore unanimous and split input
/// profiles for the BA protocols; BB and ds-BB give every process the base
/// value (only the sender's matters).
[[nodiscard]] std::vector<WireValue> derive_inputs(const CellSpec& cell);

/// Runs the cell and returns the checkable record.
[[nodiscard]] RunRecord run_cell(const CellSpec& cell,
                                 const RunOptions& opts = {});

}  // namespace mewc::check
