#include "check/crash.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "check/adversary_registry.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "smr/engine.hpp"
#include "smr/wal.hpp"

namespace mewc::check {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Per-slot adversary for both runs. Pure in (slot, sender), so the
/// continuation run rebuilds exactly the adversary the crashed run used.
/// Checkpoint instances arrive with sender == kNoProcess and use the odd
/// nonce lane, mirroring Ledger::prepare_spec/run_checkpoint.
smr::Ledger::AdversaryFactory slot_adversary(const CrashCellSpec& cell) {
  if (cell.adversary == "none" || cell.f == 0) return nullptr;
  return [cell](std::uint64_t slot, ProcessId sender) {
    AdversaryParams params;
    params.protocol =
        sender == kNoProcess ? Protocol::kStrongBa : Protocol::kBb;
    params.n = cell.n;
    params.t = cell.t;
    params.f = cell.f;
    params.instance = 1000 + 2 * slot + (sender == kNoProcess ? 1 : 0);
    params.seed = cell.seed;
    params.sender = sender;
    return make_adversary(cell.adversary, params);
  };
}

smr::EngineConfig engine_config(const CrashCellSpec& cell,
                                smr::DurabilityHook* hook) {
  smr::EngineConfig c;
  c.n = cell.n;
  c.t = cell.t;
  c.seed = cell.seed;
  c.workers = cell.workers;
  c.queue_capacity = 8;
  c.checkpoint_every = cell.checkpoint_every;
  c.durability = hook;
  return c;
}

smr::Ledger::Config ledger_config(const CrashCellSpec& cell) {
  smr::Ledger::Config c;
  c.n = cell.n;
  c.t = cell.t;
  c.seed = cell.seed;
  c.checkpoint_every = cell.checkpoint_every;
  return c;
}

}  // namespace

const char* tear_name(TearMode mode) {
  switch (mode) {
    case TearMode::kNone:
      return "none";
    case TearMode::kTruncate:
      return "truncate";
    case TearMode::kCorrupt:
      return "corrupt";
  }
  return "?";
}

std::optional<TearMode> parse_tear(std::string_view name) {
  if (name == "none") return TearMode::kNone;
  if (name == "truncate") return TearMode::kTruncate;
  if (name == "corrupt") return TearMode::kCorrupt;
  return std::nullopt;
}

std::string CrashCellSpec::label() const {
  std::string s = "crash n=" + std::to_string(n) + " t=" + std::to_string(t) +
                  " f=" + std::to_string(f) + " adv=" + adversary +
                  " slots=" + std::to_string(slots) +
                  " cp=" + std::to_string(checkpoint_every) +
                  " crash@" + std::to_string(crash_slot) +
                  (after_checkpoint ? "+cp" : "") +
                  (mid_snapshot ? "+snap" : "") +
                  " workers=" + std::to_string(workers) +
                  " tear=" + tear_name(tear) + ":" +
                  std::to_string(tear_seed) + " seed=" + std::to_string(seed);
  return s;
}

smr::Command crash_proposal(std::uint64_t seed, std::uint64_t slot) {
  Rng rng(hash_combine(mix64(seed ^ 0xc4a5), slot));
  const std::uint32_t key = static_cast<std::uint32_t>(rng.below(48));
  const std::uint64_t arg = rng.below(1u << 20);
  switch (rng.below(4)) {
    case 0:
    case 1:
      return smr::Command::put(key, arg);
    case 2:
      return smr::Command::add(key, arg);
    default:
      return smr::Command::erase(key);
  }
}

CrashRunRecord run_crash_cell(const CrashCellSpec& cell) {
  CrashRunRecord rec;
  rec.cell = cell;
  const smr::Ledger::AdversaryFactory adversary = slot_adversary(cell);

  // -------------------------------------------------------------------------
  // Reference: the uninterrupted run every crash-run metric is held against.
  smr::Store ref_store;
  smr::Durability ref_dur(&ref_store);
  {
    smr::Engine engine(engine_config(cell, &ref_dur));
    for (std::uint64_t s = 0; s < cell.slots; ++s) {
      engine.submit(crash_proposal(cell.seed, s).pack(), adversary);
    }
    engine.finish();
    rec.ref_digest = engine.ledger().ledger_digest();
    rec.ref_total_words = engine.ledger().total_words();
    rec.ref_checkpoints = engine.ledger().checkpoints().size();
    rec.ref_healthy = engine.ledger().healthy();
    rec.ref_slots = engine.ledger().slots();
  }
  rec.ref_kv_digest = ref_dur.kv().digest();
  rec.ref_wal = ref_store.wal;

  // -------------------------------------------------------------------------
  // Crash run, phase 1: same workload, but the durability hook dies at the
  // crash slot. Instances past the crash may still run in-memory (workers
  // in flight when the process died); none of that becomes durable. The
  // engine and hook are then discarded — only `store` survives the crash.
  smr::Store store;
  {
    smr::CrashPlan plan;
    plan.crash_slot = cell.crash_slot;
    plan.after_checkpoint = cell.after_checkpoint;
    plan.mid_snapshot = cell.mid_snapshot;
    smr::Durability dur(&store, plan);
    smr::Engine engine(engine_config(cell, &dur));
    for (std::uint64_t s = 0; s < cell.slots; ++s) {
      engine.submit(crash_proposal(cell.seed, s).pack(), adversary);
    }
    engine.finish();
  }

  // Tear the last durable WAL record at a seeded byte offset: the write
  // that was in flight when the process died.
  if (cell.tear != TearMode::kNone && !store.wal.empty()) {
    const smr::wal::ScanResult scanned = smr::wal::scan(store.wal);
    if (!scanned.records.empty()) {
      const std::size_t last = scanned.records.back().offset;
      const std::size_t len = store.wal.size() - last;
      rec.torn_record_offset = last;
      rec.tear_offset = static_cast<std::size_t>(
          Rng(hash_combine(mix64(cell.seed ^ 0x7ea5), cell.tear_seed))
              .below(len));
      if (cell.tear == TearMode::kTruncate) {
        store.wal.resize(last + rec.tear_offset);
      } else {
        store.wal[last + rec.tear_offset] ^= 0x5a;
      }
      rec.tear_applied = true;
    }
  }

  // Tear the snapshot the crash interrupted: the non-atomic overwrite had
  // already destroyed the old snapshot, so only a prefix of the new cut
  // survives (offset 0 = nothing at all). The WAL tear above is
  // independent — a real crash tears whichever writes were in flight.
  if (cell.mid_snapshot && !store.snapshot.empty()) {
    rec.snapshot_tear_offset = static_cast<std::size_t>(
        Rng(hash_combine(mix64(cell.seed ^ 0x54a9), cell.tear_seed))
            .below(store.snapshot.size()));
    store.snapshot.resize(rec.snapshot_tear_offset);
    rec.snapshot_torn = true;
  }

  // -------------------------------------------------------------------------
  // Crash run, phase 2: recover from the (mutilated) store and continue the
  // workload to the same horizon as the reference.
  {
    smr::Recovered recovered = smr::recover(ledger_config(cell), store);
    rec.recovery = recovered.stats;
    rec.recovered_slots = recovered.state.slots.size();
    rec.recovered_digest =
        smr::Ledger::replay_digest(cell.seed, recovered.state.slots);

    smr::Durability dur(&store);
    dur.reset_kv(recovered.kv);
    smr::Engine engine(engine_config(cell, &dur));
    engine.restore(std::move(recovered.state), adversary);
    for (std::uint64_t s = rec.recovered_slots; s < cell.slots; ++s) {
      engine.submit(crash_proposal(cell.seed, s).pack(), adversary);
    }
    engine.finish();
    rec.final_digest = engine.ledger().ledger_digest();
    rec.final_total_words = engine.ledger().total_words();
    rec.final_checkpoints = engine.ledger().checkpoints().size();
    rec.final_healthy = engine.ledger().healthy();
    rec.final_kv_digest = dur.kv().digest();
  }
  rec.final_wal = store.wal;

  // -------------------------------------------------------------------------
  // Catch-up probe: a fresh replica syncing from the reference replica's
  // store must reach the reference state without running any consensus.
  if (!ref_store.snapshot.empty()) {
    rec.catchup_attempted = true;
    const smr::CaughtUp caught = smr::catch_up(ledger_config(cell), ref_store);
    rec.catchup = caught.stats;
    rec.catchup_digest =
        smr::Ledger::replay_digest(cell.seed, caught.state.slots);
    rec.catchup_kv_digest = caught.kv.digest();
  }
  return rec;
}

std::vector<Violation> check_crash_run(const CrashRunRecord& rec) {
  std::vector<Violation> out;
  const auto violate = [&](const std::string& checker,
                           const std::string& detail) {
    out.push_back({checker, detail});
  };

  // crash-prefix: what recovery trusts must be a verified prefix of what
  // the uninterrupted run committed — no partial slot, no fabricated slot.
  if (rec.recovered_slots > rec.ref_slots.size()) {
    violate("crash-prefix",
            "recovered " + std::to_string(rec.recovered_slots) +
                " slots, reference committed only " +
                std::to_string(rec.ref_slots.size()));
  } else {
    const std::vector<smr::SlotRecord> prefix(
        rec.ref_slots.begin(),
        rec.ref_slots.begin() +
            static_cast<std::ptrdiff_t>(rec.recovered_slots));
    const std::uint64_t want =
        smr::Ledger::replay_digest(rec.cell.seed, prefix);
    if (want != rec.recovered_digest) {
      violate("crash-prefix",
              "recovered digest " + hex64(rec.recovered_digest) +
                  " != reference prefix digest " + hex64(want) + " at slot " +
                  std::to_string(rec.recovered_slots) +
                  " (partial or diverged slot survived recovery)");
    }
  }

  // crash-digest: the continued run ends bit-identical to the reference.
  if (rec.final_digest != rec.ref_digest) {
    violate("crash-digest", "final ledger digest " + hex64(rec.final_digest) +
                                " != reference " + hex64(rec.ref_digest));
  }

  // crash-kv: the state machine agrees too.
  if (rec.final_kv_digest != rec.ref_kv_digest) {
    violate("crash-kv", "final kv digest " + hex64(rec.final_kv_digest) +
                            " != reference " + hex64(rec.ref_kv_digest));
  }

  // crash-meter: word totals and checkpoint stream are crash-invariant.
  if (rec.final_total_words != rec.ref_total_words) {
    violate("crash-meter",
            "total words " + std::to_string(rec.final_total_words) +
                " != reference " + std::to_string(rec.ref_total_words));
  }
  if (rec.final_checkpoints != rec.ref_checkpoints) {
    violate("crash-meter",
            "checkpoints " + std::to_string(rec.final_checkpoints) +
                " != reference " + std::to_string(rec.ref_checkpoints));
  }

  // crash-wal: the durable bytes converge to the reference's, bit for bit.
  if (rec.final_wal != rec.ref_wal) {
    violate("crash-wal",
            "final WAL (" + std::to_string(rec.final_wal.size()) +
                " bytes) != reference WAL (" +
                std::to_string(rec.ref_wal.size()) + " bytes)");
  }

  // crash-health: recovery must not flip the health verdict either way.
  if (rec.final_healthy != rec.ref_healthy) {
    violate("crash-health",
            std::string("final healthy=") +
                (rec.final_healthy ? "true" : "false") + " != reference " +
                (rec.ref_healthy ? "true" : "false"));
  }

  // crash-catchup: certified state sync reproduces the reference state.
  if (rec.catchup_attempted) {
    if (!rec.catchup.ok || !rec.catchup.cert_ok) {
      violate("crash-catchup",
              "catch-up from the reference store was rejected");
    } else if (rec.catchup_digest != rec.ref_digest ||
               rec.catchup_kv_digest != rec.ref_kv_digest) {
      violate("crash-catchup",
              "caught-up digest " + hex64(rec.catchup_digest) + "/kv " +
                  hex64(rec.catchup_kv_digest) + " != reference " +
                  hex64(rec.ref_digest) + "/kv " + hex64(rec.ref_kv_digest));
    }
  }
  return out;
}

std::vector<Violation> crash_violations_of(const CrashCellSpec& cell) {
  return check_crash_run(run_crash_cell(cell));
}

// ---------------------------------------------------------------------------
// Grid + campaign.
// ---------------------------------------------------------------------------

std::vector<CrashCellSpec> CrashGridSpec::enumerate() const {
  std::vector<CrashCellSpec> cells;
  for (const GridSize& size : sizes) {
    const std::uint32_t n = size.n == 0 ? n_for_t(size.t) : size.n;
    for (const std::uint64_t slots : slot_counts) {
      for (const std::uint32_t cadence : cadences) {
        for (const std::uint64_t crash_slot : crash_slots) {
          if (crash_slot >= slots) continue;
          for (const std::uint32_t workers : worker_counts) {
            for (const std::string& adv : adversaries) {
              for (const std::uint32_t f : fs) {
                if (f > size.t) continue;
                for (const std::uint64_t seed : seeds) {
                  for (const TearMode tear : tears) {
                    for (const std::uint64_t tear_seed : tear_seeds) {
                      for (const bool after_cp : after_checkpoint) {
                        for (const bool mid_snap : mid_snapshot) {
                          // mid_snapshot subsumes after_checkpoint (the
                          // checkpoint record is durable in both); skip
                          // the redundant combined cell.
                          if (after_cp && mid_snap) continue;
                          CrashCellSpec cell;
                          cell.n = n;
                          cell.t = size.t;
                          cell.f = f;
                          cell.adversary = adv;
                          cell.slots = slots;
                          cell.checkpoint_every = cadence;
                          cell.crash_slot = crash_slot;
                          cell.workers = workers;
                          cell.seed = seed;
                          cell.tear = tear;
                          cell.tear_seed = tear_seed;
                          cell.after_checkpoint = after_cp;
                          cell.mid_snapshot = mid_snap;
                          cells.push_back(std::move(cell));
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

bool CrashGridSpec::from_json(const json::Value& v, CrashGridSpec* out,
                              std::string* error) {
  if (!v.is_object()) return fail(error, "crash grid must be a JSON object");
  CrashGridSpec grid;

  const auto& sizes = v["sizes"];
  if (!sizes.is_array() || sizes.as_array().empty()) {
    return fail(error, "crash grid.sizes must be a non-empty array of {n?, t}");
  }
  for (const auto& s : sizes.as_array()) {
    if (!s.is_object() || !s["t"].is_number()) {
      return fail(error, "each crash grid size needs a numeric t");
    }
    GridSize size;
    size.t = static_cast<std::uint32_t>(s["t"].as_u64());
    size.n = static_cast<std::uint32_t>(s["n"].as_u64());
    if (size.t == 0) return fail(error, "crash grid size t must be >= 1");
    if (size.n != 0 && size.n < 2 * size.t + 1) {
      return fail(error, "crash grid size n must satisfy n >= 2t+1");
    }
    grid.sizes.push_back(size);
  }

  const auto u32_list = [&](const char* key, std::vector<std::uint32_t>* dst,
                            std::uint32_t min) {
    if (v[key].is_null()) return true;
    dst->clear();
    for (const auto& e : v[key].as_array()) {
      dst->push_back(static_cast<std::uint32_t>(e.as_u64()));
      if (dst->back() < min) return false;
    }
    return !dst->empty();
  };
  const auto u64_list = [&](const char* key, std::vector<std::uint64_t>* dst) {
    if (v[key].is_null()) return true;
    dst->clear();
    for (const auto& e : v[key].as_array()) dst->push_back(e.as_u64());
    return !dst->empty();
  };

  if (!u64_list("slots", &grid.slot_counts) ||
      std::any_of(grid.slot_counts.begin(), grid.slot_counts.end(),
                  [](std::uint64_t s) { return s == 0; })) {
    return fail(error, "crash grid.slots must be a non-empty array of >= 1");
  }
  if (!u32_list("cadences", &grid.cadences, 1)) {
    return fail(error, "crash grid.cadences must be non-empty, all >= 1");
  }
  if (!u64_list("crash_slots", &grid.crash_slots)) {
    return fail(error, "crash grid.crash_slots must not be empty");
  }
  if (!u32_list("workers", &grid.worker_counts, 1)) {
    return fail(error, "crash grid.workers must be non-empty, all >= 1");
  }
  if (!u32_list("fs", &grid.fs, 0)) {
    return fail(error, "crash grid.fs must not be empty");
  }
  if (!u64_list("seeds", &grid.seeds)) {
    return fail(error, "crash grid.seeds must not be empty");
  }
  if (!u64_list("tear_seeds", &grid.tear_seeds)) {
    return fail(error, "crash grid.tear_seeds must not be empty");
  }

  if (!v["adversaries"].is_null()) {
    grid.adversaries.clear();
    for (const auto& a : v["adversaries"].as_array()) {
      if (!a.is_string()) return fail(error, "adversary names are strings");
      const auto& names = adversary_names();
      if (a.as_string() != "none" &&
          std::find(names.begin(), names.end(), a.as_string()) ==
              names.end()) {
        return fail(error, "unknown adversary '" + a.as_string() +
                               "' (expected none|" +
                               adversary_names_joined() + ")");
      }
      grid.adversaries.push_back(a.as_string());
    }
    if (grid.adversaries.empty()) {
      return fail(error, "crash grid.adversaries must not be empty");
    }
  }

  if (!v["tears"].is_null()) {
    grid.tears.clear();
    for (const auto& tv : v["tears"].as_array()) {
      const auto tear =
          tv.is_string() ? parse_tear(tv.as_string()) : std::nullopt;
      if (!tear) {
        return fail(error, "unknown tear mode (expected none|truncate|corrupt)");
      }
      grid.tears.push_back(*tear);
    }
    if (grid.tears.empty()) {
      return fail(error, "crash grid.tears must not be empty");
    }
  }

  if (!v["after_checkpoint"].is_null()) {
    grid.after_checkpoint.clear();
    for (const auto& b : v["after_checkpoint"].as_array()) {
      grid.after_checkpoint.push_back(b.as_bool());
    }
    if (grid.after_checkpoint.empty()) {
      return fail(error, "crash grid.after_checkpoint must not be empty");
    }
  }

  if (!v["mid_snapshot"].is_null()) {
    grid.mid_snapshot.clear();
    for (const auto& b : v["mid_snapshot"].as_array()) {
      grid.mid_snapshot.push_back(b.as_bool());
    }
    if (grid.mid_snapshot.empty()) {
      return fail(error, "crash grid.mid_snapshot must not be empty");
    }
  }

  *out = std::move(grid);
  return true;
}

const CrashCellResult* CrashCampaignReport::first_failure() const {
  for (const auto& r : results) {
    if (!r.passed()) return &r;
  }
  return nullptr;
}

json::Value CrashCampaignReport::to_json() const {
  json::Object root;
  root["cells_total"] = json::Value(cells_total);
  root["cells_passed"] = json::Value(cells_passed);
  root["cells_failed"] = json::Value(cells_failed());

  // Recovery-path exercise summary: how often each lane actually ran.
  std::uint64_t used_snapshot = 0;
  std::uint64_t truncated_cells = 0;
  std::uint64_t bytes_truncated = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t checkpoints_completed = 0;
  std::uint64_t catchup_words = 0;
  for (const auto& r : results) {
    used_snapshot += r.used_snapshot ? 1 : 0;
    truncated_cells += r.wal_bytes_truncated > 0 ? 1 : 0;
    bytes_truncated += r.wal_bytes_truncated;
    records_replayed += r.records_replayed;
    checkpoints_completed += r.checkpoint_completed ? 1 : 0;
    catchup_words += r.catchup_words;
  }
  json::Object recovery;
  recovery["cells_using_snapshot"] = json::Value(used_snapshot);
  recovery["cells_truncating_wal"] = json::Value(truncated_cells);
  recovery["wal_bytes_truncated"] = json::Value(bytes_truncated);
  recovery["wal_records_replayed"] = json::Value(records_replayed);
  recovery["pending_checkpoints_completed"] =
      json::Value(checkpoints_completed);
  recovery["catchup_words_transferred"] = json::Value(catchup_words);
  root["recovery"] = json::Value(std::move(recovery));

  json::Array failures;
  for (const auto& r : results) {
    if (r.passed()) continue;
    json::Object f;
    f["cell"] = json::Value(r.cell.label());
    json::Array vs;
    for (const auto& v : r.violations) {
      json::Object vo;
      vo["checker"] = json::Value(v.checker);
      vo["detail"] = json::Value(v.detail);
      vs.push_back(json::Value(std::move(vo)));
    }
    f["violations"] = json::Value(std::move(vs));
    failures.push_back(json::Value(std::move(f)));
  }
  root["failures"] = json::Value(std::move(failures));
  return json::Value(std::move(root));
}

CrashCampaignReport run_crash_campaign(
    const CrashGridSpec& grid, unsigned jobs,
    const std::function<void(const CrashCellResult&)>& on_cell) {
  const std::vector<CrashCellSpec> cells = grid.enumerate();

  CrashCampaignReport report;
  report.results.resize(cells.size());
  report.cells_total = cells.size();

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      const CrashRunRecord record = run_crash_cell(cells[i]);
      CrashCellResult& result = report.results[i];
      result.cell = cells[i];
      result.violations = check_crash_run(record);
      result.used_snapshot = record.recovery.used_snapshot;
      result.records_replayed = record.recovery.records_replayed;
      result.wal_bytes_truncated = record.recovery.wal_bytes_truncated;
      result.checkpoint_completed = record.recovery.checkpoint_pending;
      result.catchup_words = record.catchup.words_transferred;
      if (on_cell) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        on_cell(result);
      }
    }
  };

  unsigned threads = jobs != 0 ? jobs : std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(cells.size())));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  for (const auto& r : report.results) {
    report.cells_passed += r.passed() ? 1 : 0;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------------

namespace {

/// Candidate moves, larger reductions first; each strictly reduces the
/// cell so the greedy loop terminates.
std::vector<CrashCellSpec> crash_candidates(const CrashCellSpec& cell) {
  std::vector<CrashCellSpec> out;
  const auto push = [&](CrashCellSpec c) { out.push_back(std::move(c)); };

  // Fewer slots: the run only needs to outlive the crash by one slot.
  if (cell.slots > cell.crash_slot + 1) {
    CrashCellSpec c = cell;
    c.slots = cell.crash_slot + 1;
    push(c);
  }
  // Earlier crash: bisect, then decrement.
  if (cell.crash_slot >= 2) {
    CrashCellSpec c = cell;
    c.crash_slot = cell.crash_slot / 2;
    push(c);
  }
  if (cell.crash_slot >= 1) {
    CrashCellSpec c = cell;
    c.crash_slot = cell.crash_slot - 1;
    push(c);
  }
  // Smaller system: drop t (with the matching minimal n), keep f legal.
  if (cell.t >= 2) {
    CrashCellSpec c = cell;
    c.t = cell.t - 1;
    c.n = n_for_t(c.t);
    c.f = std::min(cell.f, c.t);
    push(c);
  }
  // Narrow a wide system toward n = 2t+1 without touching t.
  if (cell.n >= 2 * cell.t + 3) {
    CrashCellSpec c = cell;
    c.n = cell.n - 2;
    push(c);
  }
  // One worker: drop the pipeline from the repro if it is irrelevant.
  if (cell.workers > 1) {
    CrashCellSpec c = cell;
    c.workers = 1;
    push(c);
  }
  // Tighter checkpoint cadence.
  if (cell.checkpoint_every > 1) {
    CrashCellSpec c = cell;
    c.checkpoint_every = 1;
    push(c);
  }
  // Smaller corruption budget.
  if (cell.f >= 2) {
    CrashCellSpec c = cell;
    c.f = cell.f / 2;
    push(c);
  }
  if (cell.f >= 1) {
    CrashCellSpec c = cell;
    c.f = cell.f - 1;
    push(c);
  }
  // Simpler tear (corrupt -> truncate) and the plain crash variant.
  if (cell.tear == TearMode::kCorrupt) {
    CrashCellSpec c = cell;
    c.tear = TearMode::kTruncate;
    push(c);
  }
  if (cell.after_checkpoint) {
    CrashCellSpec c = cell;
    c.after_checkpoint = false;
    push(c);
  }
  if (cell.mid_snapshot) {
    CrashCellSpec c = cell;
    c.mid_snapshot = false;
    push(c);
  }
  // Strictly smaller seeds only, so seed moves cannot cycle.
  for (const std::uint64_t s :
       {std::uint64_t{1}, cell.seed / 2, cell.seed - 1}) {
    if (s < cell.seed) {
      CrashCellSpec c = cell;
      c.seed = s;
      push(c);
    }
  }
  for (const std::uint64_t s :
       {std::uint64_t{0}, cell.tear_seed / 2, cell.tear_seed - 1}) {
    if (cell.tear_seed > 0 && s < cell.tear_seed) {
      CrashCellSpec c = cell;
      c.tear_seed = s;
      push(c);
    }
  }
  return out;
}

bool crash_fails_same(const CrashCellSpec& cell, const std::string& checker) {
  const auto violations = crash_violations_of(cell);
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.checker == checker; });
}

}  // namespace

CrashShrinkResult shrink_crash_failure(const CrashCellSpec& failing,
                                       std::uint32_t max_runs) {
  CrashShrinkResult result;
  result.minimal = failing;

  if (const auto vs = crash_violations_of(failing); !vs.empty()) {
    result.checker = vs.front().checker;
  }
  result.runs = 1;
  if (result.checker.empty()) return result;  // not actually failing

  bool progressed = true;
  while (progressed && result.runs < max_runs) {
    progressed = false;
    for (const CrashCellSpec& candidate : crash_candidates(result.minimal)) {
      if (result.runs >= max_runs) break;
      ++result.runs;
      if (crash_fails_same(candidate, result.checker)) {
        result.minimal = candidate;
        ++result.steps;
        progressed = true;
        break;  // restart from the reduced cell
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Replay files.
// ---------------------------------------------------------------------------

json::Value CrashReplay::to_json() const {
  json::Object cell_json;
  cell_json["n"] = json::Value(cell.n);
  cell_json["t"] = json::Value(cell.t);
  cell_json["f"] = json::Value(cell.f);
  cell_json["adversary"] = json::Value(cell.adversary);
  cell_json["slots"] = json::Value(cell.slots);
  cell_json["checkpoint_every"] = json::Value(cell.checkpoint_every);
  cell_json["crash_slot"] = json::Value(cell.crash_slot);
  cell_json["workers"] = json::Value(cell.workers);
  cell_json["seed"] = json::Value(cell.seed);
  cell_json["tear"] = json::Value(tear_name(cell.tear));
  cell_json["tear_seed"] = json::Value(cell.tear_seed);
  cell_json["after_checkpoint"] = json::Value(cell.after_checkpoint);
  cell_json["mid_snapshot"] = json::Value(cell.mid_snapshot);

  json::Array expected_json;
  for (const auto& v : expected) {
    json::Object vo;
    vo["checker"] = json::Value(v.checker);
    vo["detail"] = json::Value(v.detail);
    expected_json.push_back(json::Value(std::move(vo)));
  }

  json::Object root;
  root["mewc_crash_replay"] = json::Value(1);
  root["cell"] = json::Value(std::move(cell_json));
  root["violations"] = json::Value(std::move(expected_json));
  return json::Value(std::move(root));
}

bool CrashReplay::from_json(const json::Value& v, CrashReplay* out,
                            std::string* error) {
  if (v["mewc_crash_replay"].as_u64() != 1) {
    return fail(error,
                "not a mewc crash replay file (missing mewc_crash_replay: 1)");
  }
  const auto& c = v["cell"];
  if (!c.is_object()) return fail(error, "crash replay.cell must be an object");

  CrashReplay replay;
  replay.cell.n = static_cast<std::uint32_t>(c["n"].as_u64());
  replay.cell.t = static_cast<std::uint32_t>(c["t"].as_u64());
  replay.cell.f = static_cast<std::uint32_t>(c["f"].as_u64());
  replay.cell.adversary = c["adversary"].as_string();
  replay.cell.slots = c["slots"].as_u64();
  replay.cell.checkpoint_every =
      static_cast<std::uint32_t>(c["checkpoint_every"].as_u64());
  replay.cell.crash_slot = c["crash_slot"].as_u64();
  replay.cell.workers = static_cast<std::uint32_t>(c["workers"].as_u64(1));
  replay.cell.seed = c["seed"].as_u64();
  const auto tear = parse_tear(c["tear"].is_string() ? c["tear"].as_string()
                                                     : "truncate");
  if (!tear) return fail(error, "unknown tear mode in crash replay cell");
  replay.cell.tear = *tear;
  replay.cell.tear_seed = c["tear_seed"].as_u64();
  replay.cell.after_checkpoint = c["after_checkpoint"].as_bool();
  replay.cell.mid_snapshot = c["mid_snapshot"].as_bool();

  if (replay.cell.t == 0 || replay.cell.n < 2 * replay.cell.t + 1) {
    return fail(error, "crash replay cell needs t >= 1 and n >= 2t+1");
  }
  if (replay.cell.slots == 0 ||
      replay.cell.crash_slot >= replay.cell.slots) {
    return fail(error, "crash replay cell needs crash_slot < slots");
  }
  if (replay.cell.workers == 0) {
    return fail(error, "crash replay cell needs workers >= 1");
  }
  if (replay.cell.f > replay.cell.t) {
    return fail(error, "crash replay cell needs f <= t");
  }
  if (replay.cell.adversary != "none") {
    const auto& names = adversary_names();
    if (std::find(names.begin(), names.end(), replay.cell.adversary) ==
        names.end()) {
      return fail(error, "unknown adversary in crash replay cell");
    }
  }

  for (const auto& vj : v["violations"].as_array()) {
    replay.expected.push_back(
        {vj["checker"].as_string(), vj["detail"].as_string()});
  }

  *out = std::move(replay);
  return true;
}

bool CrashReplay::save(const std::string& path) const {
  return json::write_file(path, to_json());
}

bool CrashReplay::load(const std::string& path, CrashReplay* out,
                       std::string* error) {
  const auto v = json::read_file(path, error);
  if (!v) return false;
  return from_json(*v, out, error);
}

}  // namespace mewc::check
