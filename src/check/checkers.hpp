// Composable invariant checkers over a RunRecord. Each checker inspects the
// outcome of one simulated run and reports violations; the registry in
// default_checkers() is what campaigns, tests and the replay tool evaluate.
//
// Soundness rule: a checker may only flag conditions the paper guarantees
// under an arbitrary adversary within the run's corruption budget. Anything
// conditional (validity needs honest inputs, the word bound needs the
// adaptive regime) guards itself on the recorded run facts, so every
// checker can run on every cell of a campaign grid.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/record.hpp"

namespace mewc::check {

/// One invariant violation, attributable to a named checker.
struct Violation {
  std::string checker;
  std::string detail;
};

struct CheckerOptions {
  /// Envelope constant C of the Table 1 adaptive bound
  /// words_correct <= C * n * (f+1); matches tests/ba/complexity_test.cpp.
  std::uint64_t word_budget_c = 30;
};

class Checker {
 public:
  virtual ~Checker() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Appends any violations found in `record` to `out`.
  virtual void check(const RunRecord& record, const CheckerOptions& opts,
                     std::vector<Violation>& out) const = 0;
};

/// All correct decided processes hold the same decision.
class AgreementChecker final : public Checker {
 public:
  [[nodiscard]] const char* name() const override { return "agreement"; }
  void check(const RunRecord& record, const CheckerOptions& opts,
             std::vector<Violation>& out) const override;
};

/// Protocol-specific validity: a correct BB sender's value wins; unanimity
/// among correct inputs pins the BA decision (weak BA only at f = 0, where
/// the paper's weak unanimity premise "all processes have the same input"
/// is actually met).
class ValidityChecker final : public Checker {
 public:
  [[nodiscard]] const char* name() const override { return "validity"; }
  void check(const RunRecord& record, const CheckerOptions& opts,
             std::vector<Violation>& out) const override;
};

/// Every correct process decides within the round schedule.
class TerminationChecker final : public Checker {
 public:
  [[nodiscard]] const char* name() const override { return "termination"; }
  void check(const RunRecord& record, const CheckerOptions& opts,
             std::vector<Violation>& out) const override;
};

/// Table 1 adaptive word bound: in the adaptive regime (n - f >= the commit
/// quorum), correct processes spend at most C * n * (f+1) words and never
/// enter the fallback. Strong BA is checked at f = 0 against C * n.
class WordBudgetChecker final : public Checker {
 public:
  [[nodiscard]] const char* name() const override { return "word-budget"; }
  void check(const RunRecord& record, const CheckerOptions& opts,
             std::vector<Violation>& out) const override;
};

/// Every threshold certificate a correct process put on the wire verified
/// against the run's schemes and carried at least the threshold its
/// position demands.
class CertificateChecker final : public Checker {
 public:
  [[nodiscard]] const char* name() const override { return "certificates"; }
  void check(const RunRecord& record, const CheckerOptions& opts,
             std::vector<Violation>& out) const override;
};

/// The full registry, in reporting order.
[[nodiscard]] std::vector<std::unique_ptr<Checker>> default_checkers();

/// Runs every checker over the record; returns all violations found.
[[nodiscard]] std::vector<Violation> run_checkers(const RunRecord& record,
                                                  const CheckerOptions& opts);

}  // namespace mewc::check
