#include "check/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "check/adversary_registry.hpp"
#include "check/runner.hpp"
#include "net/arena.hpp"

namespace mewc::check {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

std::vector<CellSpec> GridSpec::enumerate() const {
  std::vector<CellSpec> cells;
  for (const Protocol proto : protocols) {
    for (const GridSize& size : sizes) {
      const std::uint32_t n = size.n == 0 ? n_for_t(size.t) : size.n;
      for (const std::uint32_t f : fs) {
        if (f > size.t) continue;
        for (const std::string& adv : adversaries) {
          for (const std::uint64_t seed : seeds) {
            for (const ThresholdBackend backend : backends) {
              for (const ExecutorKind executor : executors) {
                CellSpec cell;
                cell.protocol = proto;
                cell.n = n;
                cell.t = size.t;
                cell.f = f;
                cell.adversary = adv;
                cell.seed = seed;
                cell.backend = backend;
                cell.codec_roundtrip = codec_roundtrip;
                cell.executor = executor;
                cell.value = value;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

bool GridSpec::from_json(const json::Value& v, GridSpec* out,
                         std::string* error) {
  if (!v.is_object()) return fail(error, "grid must be a JSON object");
  GridSpec grid;

  const auto& protocols = v["protocols"];
  if (!protocols.is_array() || protocols.as_array().empty()) {
    return fail(error, "grid.protocols must be a non-empty array");
  }
  for (const auto& p : protocols.as_array()) {
    if (p.is_string() && p.as_string() == "all") {
      grid.protocols = all_protocols();
      continue;
    }
    const auto proto =
        p.is_string() ? parse_protocol(p.as_string()) : std::nullopt;
    if (!proto) {
      return fail(error, "unknown protocol '" +
                             (p.is_string() ? p.as_string() : "?") +
                             "' (expected " + protocol_names_joined() + ")");
    }
    grid.protocols.push_back(*proto);
  }

  const auto& sizes = v["sizes"];
  if (!sizes.is_array() || sizes.as_array().empty()) {
    return fail(error, "grid.sizes must be a non-empty array of {n?, t}");
  }
  for (const auto& s : sizes.as_array()) {
    if (!s.is_object() || !s["t"].is_number()) {
      return fail(error, "each grid size needs a numeric t");
    }
    GridSize size;
    size.t = static_cast<std::uint32_t>(s["t"].as_u64());
    size.n = static_cast<std::uint32_t>(s["n"].as_u64());
    if (size.t == 0) return fail(error, "grid size t must be >= 1");
    if (size.n != 0 && size.n < 2 * size.t + 1) {
      return fail(error, "grid size n must satisfy n >= 2t+1");
    }
    grid.sizes.push_back(size);
  }

  if (!v["fs"].is_null()) {
    grid.fs.clear();
    for (const auto& f : v["fs"].as_array()) {
      grid.fs.push_back(static_cast<std::uint32_t>(f.as_u64()));
    }
    if (grid.fs.empty()) return fail(error, "grid.fs must not be empty");
  }

  if (!v["adversaries"].is_null()) {
    grid.adversaries.clear();
    for (const auto& a : v["adversaries"].as_array()) {
      if (!a.is_string()) return fail(error, "adversary names are strings");
      const auto& names = adversary_names();
      if (std::find(names.begin(), names.end(), a.as_string()) ==
          names.end()) {
        return fail(error, "unknown adversary '" + a.as_string() +
                               "' (expected " + adversary_names_joined() +
                               ")");
      }
      grid.adversaries.push_back(a.as_string());
    }
    if (grid.adversaries.empty()) {
      return fail(error, "grid.adversaries must not be empty");
    }
  }

  if (!v["seeds"].is_null()) {
    grid.seeds.clear();
    if (v["seeds"].is_number()) {
      // Shorthand: "seeds": 16 sweeps seeds 1..16.
      const std::uint64_t count = v["seeds"].as_u64();
      if (count == 0) return fail(error, "grid.seeds must be >= 1");
      for (std::uint64_t s = 1; s <= count; ++s) grid.seeds.push_back(s);
    } else {
      for (const auto& s : v["seeds"].as_array()) {
        grid.seeds.push_back(s.as_u64());
      }
      if (grid.seeds.empty()) return fail(error, "grid.seeds must not be empty");
    }
  }

  if (!v["backend"].is_null() && !v["backends"].is_null()) {
    return fail(error, "grid.backend and grid.backends are mutually exclusive");
  }
  if (!v["backend"].is_null()) {
    const std::string& b = v["backend"].as_string();
    const auto parsed = parse_backend(b);
    if (!parsed) {
      return fail(error,
                  "unknown backend '" + b + "' (expected sim|shamir|real)");
    }
    grid.backends = {*parsed};
  }
  if (!v["backends"].is_null()) {
    grid.backends.clear();
    for (const auto& b : v["backends"].as_array()) {
      if (!b.is_string()) return fail(error, "backend names are strings");
      const auto parsed = parse_backend(b.as_string());
      if (!parsed) {
        return fail(error, "unknown backend '" + b.as_string() +
                               "' (expected sim|shamir|real)");
      }
      grid.backends.push_back(*parsed);
    }
    if (grid.backends.empty()) {
      return fail(error, "grid.backends must not be empty");
    }
  }
  if (!v["executor"].is_null() && !v["executors"].is_null()) {
    return fail(error,
                "grid.executor and grid.executors are mutually exclusive");
  }
  if (!v["executor"].is_null()) {
    const std::string& e = v["executor"].as_string();
    const auto parsed = parse_executor_kind(e);
    if (!parsed) {
      return fail(error,
                  "unknown executor '" + e + "' (expected lockstep|event)");
    }
    grid.executors = {*parsed};
  }
  if (!v["executors"].is_null()) {
    grid.executors.clear();
    for (const auto& e : v["executors"].as_array()) {
      if (!e.is_string()) return fail(error, "executor names are strings");
      const auto parsed = parse_executor_kind(e.as_string());
      if (!parsed) {
        return fail(error, "unknown executor '" + e.as_string() +
                               "' (expected lockstep|event)");
      }
      grid.executors.push_back(*parsed);
    }
    if (grid.executors.empty()) {
      return fail(error, "grid.executors must not be empty");
    }
  }
  if (!v["codec_roundtrip"].is_null()) {
    grid.codec_roundtrip = v["codec_roundtrip"].as_bool();
  }
  if (!v["value"].is_null()) grid.value = v["value"].as_u64();
  if (!v["word_budget_c"].is_null()) {
    grid.checkers.word_budget_c = v["word_budget_c"].as_u64();
    if (grid.checkers.word_budget_c == 0) {
      return fail(error, "grid.word_budget_c must be >= 1");
    }
  }
  if (!v["record_messages"].is_null()) {
    grid.record_messages = v["record_messages"].as_bool();
  }

  *out = std::move(grid);
  return true;
}

const CellResult* CampaignReport::first_failure() const {
  for (const auto& r : results) {
    if (!r.passed()) return &r;
  }
  return nullptr;
}

json::Value CampaignReport::to_json() const {
  json::Object root;
  root["cells_total"] = json::Value(cells_total);
  root["cells_passed"] = json::Value(cells_passed);
  root["cells_failed"] = json::Value(cells_failed());

  // Payload-arena reuse across the whole campaign (per-cell deltas summed,
  // so worker-thread lifetimes don't inflate any cell's share). A healthy
  // steady state reuses nearly everything after the first cell per worker.
  {
    std::uint64_t reused = 0;
    std::uint64_t fresh = 0;
    for (const auto& r : results) {
      reused += r.pool_reused;
      fresh += r.pool_fresh;
    }
    json::Object pool;
    pool["reused"] = json::Value(reused);
    pool["fresh"] = json::Value(fresh);
    const std::uint64_t total = reused + fresh;
    pool["reuse_rate"] = json::Value(
        total == 0 ? 0.0
                   : static_cast<double>(reused) / static_cast<double>(total));
    root["pool"] = json::Value(std::move(pool));
  }

  // Paper-line coverage: union across every cell, with the uncovered site
  // names listed so a shrinking grid shows up as a concrete diff, not just
  // a smaller count.
  {
    cov::Bitmap united;
    for (const auto& r : results) united.merge(r.coverage);
    json::Object coverage;
    coverage["sites_total"] = json::Value(std::uint64_t{cov::kSiteCount});
    coverage["sites_covered"] = json::Value(std::uint64_t{united.count()});
    json::Array uncovered;
    for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
      if (!united.test(static_cast<cov::Site>(i))) {
        uncovered.push_back(
            json::Value(std::string(cov::site_name(static_cast<cov::Site>(i)))));
      }
    }
    coverage["uncovered"] = json::Value(std::move(uncovered));
    root["coverage"] = json::Value(std::move(coverage));
  }

  // Word-complexity percentiles per protocol x adversary group, normalized
  // by n*(f+1) so the Table 1 envelope is directly readable from the
  // report ("norm_max" stays below the campaign's C on passing runs in the
  // adaptive regime).
  struct Group {
    std::vector<std::uint64_t> words;
    double norm_max = 0;
    std::uint64_t cells = 0;
    std::uint64_t failed = 0;
  };
  std::map<std::string, Group> groups;
  for (const auto& r : results) {
    Group& g = groups[std::string(protocol_name(r.cell.protocol)) + "/" +
                      r.cell.adversary];
    g.words.push_back(r.words_correct);
    g.cells += 1;
    if (!r.passed()) g.failed += 1;
    const double norm =
        static_cast<double>(r.words_correct) /
        (static_cast<double>(r.cell.n) *
         static_cast<double>(r.f_observed + 1));
    g.norm_max = std::max(g.norm_max, norm);
  }
  json::Object groups_json;
  for (auto& [name, g] : groups) {
    std::sort(g.words.begin(), g.words.end());
    json::Object o;
    o["cells"] = json::Value(g.cells);
    o["failed"] = json::Value(g.failed);
    o["words_p50"] = json::Value(percentile(g.words, 0.50));
    o["words_p90"] = json::Value(percentile(g.words, 0.90));
    o["words_max"] = json::Value(g.words.empty() ? 0 : g.words.back());
    o["words_per_n_fp1_max"] = json::Value(g.norm_max);
    groups_json[name] = json::Value(std::move(o));
  }
  root["groups"] = json::Value(std::move(groups_json));

  json::Array failures;
  for (const auto& r : results) {
    if (r.passed()) continue;
    json::Object f;
    f["cell"] = json::Value(r.cell.label());
    json::Array vs;
    for (const auto& v : r.violations) {
      json::Object vo;
      vo["checker"] = json::Value(v.checker);
      vo["detail"] = json::Value(v.detail);
      vs.push_back(json::Value(std::move(vo)));
    }
    f["violations"] = json::Value(std::move(vs));
    failures.push_back(json::Value(std::move(f)));
  }
  root["failures"] = json::Value(std::move(failures));
  return json::Value(std::move(root));
}

CampaignReport run_campaign(
    const GridSpec& grid, unsigned jobs,
    const std::function<void(const CellResult&)>& on_cell) {
  const std::vector<CellSpec> cells = grid.enumerate();

  CampaignReport report;
  report.results.resize(cells.size());
  report.cells_total = cells.size();

  RunOptions run_opts;
  run_opts.record_messages = grid.record_messages;

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      // Per-cell arena accounting: thread_stats() accumulates over the
      // worker's lifetime, so a scoped delta is what attributes allocations
      // to *this* cell in a multi-cell campaign.
      const pool::StatsScope pool_scope;
      // Per-cell coverage: same scoping discipline — sites hit while this
      // cell runs land in this scope only, never in a sibling worker's.
      const cov::CoverageScope cov_scope;
      const RunRecord record = run_cell(cells[i], run_opts);
      CellResult& result = report.results[i];
      result.cell = cells[i];
      result.violations = run_checkers(record, grid.checkers);
      const pool::Stats pool_delta = pool_scope.delta();
      result.pool_reused = pool_delta.reused;
      result.pool_fresh = pool_delta.fresh;
      result.coverage = cov_scope.bitmap();
      result.words_correct = record.meter.words_correct;
      result.f_observed = record.f();
      result.any_fallback = record.any_fallback;
      result.adaptive = record.adaptive();
      if (on_cell) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        on_cell(result);
      }
    }
  };

  unsigned threads = jobs != 0 ? jobs : std::thread::hardware_concurrency();
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(cells.size())));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  for (const auto& r : report.results) {
    report.cells_passed += r.passed() ? 1 : 0;
  }
  return report;
}

}  // namespace mewc::check
