#include "check/adversary_registry.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "ba/adversaries/adversaries.hpp"
#include "ba/adversaries/fuzzer.hpp"

namespace mewc::check {

namespace {

using Factory =
    std::function<std::unique_ptr<Adversary>(const AdversaryParams&)>;

/// The first `f` process ids, skipping the designated sender so BB validity
/// stays checkable under crash strategies.
std::vector<ProcessId> first_victims(const AdversaryParams& p) {
  std::vector<ProcessId> victims;
  for (ProcessId i = 0; victims.size() < p.f && i < p.n; ++i) {
    if (i != p.sender) victims.push_back(i);
  }
  return victims;
}

const std::vector<std::pair<std::string, Factory>>& table() {
  static const std::vector<std::pair<std::string, Factory>> kTable = {
      {"none",
       [](const AdversaryParams&) {
         return std::make_unique<adv::NullAdversary>();
       }},
      {"crash",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::CrashAdversary>(first_victims(p));
       }},
      // Same victims but crashing mid-run, once the protocol has already
      // absorbed their early traffic.
      {"crash-late",
       [](const AdversaryParams& p) {
         const Round mid =
             std::max<Round>(2, protocol_rounds(p.protocol, p.n, p.t) / 2);
         return std::make_unique<adv::CrashAdversary>(first_victims(p), mid);
       }},
      {"silent-sender",
       [](const AdversaryParams& p) {
         const ProcessId victim = p.sender == kNoProcess
                                      ? static_cast<ProcessId>(p.n - 1)
                                      : p.sender;
         return std::make_unique<adv::CrashAdversary>(
             std::vector<ProcessId>{victim});
       }},
      {"killer",
       [](const AdversaryParams& p) {
         const auto geo = protocol_phases(p.protocol);
         return std::make_unique<adv::AdaptiveLeaderCrash>(geo.first, geo.len,
                                                           p.n, p.f);
       }},
      {"equivocate",
       [](const AdversaryParams& p) {
         const ProcessId sender = p.sender == kNoProcess
                                      ? static_cast<ProcessId>(p.n - 1)
                                      : p.sender;
         return std::make_unique<adv::BbEquivocatingSender>(
             sender, p.instance, adv::SenderMode::kEquivocate, Value(p.value),
             Value(p.value + 1));
       }},
      {"partial-sender",
       [](const AdversaryParams& p) {
         const ProcessId sender = p.sender == kNoProcess
                                      ? static_cast<ProcessId>(p.n - 1)
                                      : p.sender;
         return std::make_unique<adv::BbEquivocatingSender>(
             sender, p.instance, adv::SenderMode::kPartial, Value(p.value),
             Value(p.value + 1), /*reach=*/std::max(1u, p.n / 2));
       }},
      {"fuzz",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::Fuzzer>(p.instance, p.seed,
                                              std::max(1u, p.f), 4, p.sender);
       }},
      // Random garbage plus a crashed process: exercises validation layers
      // while some honest slots are simply absent.
      {"fuzz-crash",
       [](const AdversaryParams& p) {
         std::vector<std::unique_ptr<Adversary>> parts;
         const std::uint32_t fuzzed = p.f > 1 ? p.f - 1 : 1;
         parts.push_back(std::make_unique<adv::Fuzzer>(p.instance, p.seed,
                                                       fuzzed, 4, p.sender));
         auto victims = first_victims(p);
         if (!victims.empty()) victims.resize(1);
         parts.push_back(std::make_unique<adv::CrashAdversary>(victims));
         return std::make_unique<adv::Composite>(std::move(parts));
       }},
      {"random-adaptive",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::RandomAdaptiveCrash>(
             p.seed, p.f, protocol_rounds(p.protocol, p.n, p.t), p.sender);
       }},
      {"help-spam",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::WbaHelpSpam>(
             p.instance, protocol_help_round(p.protocol, p.n),
             std::max(1u, p.f), /*form_certificate=*/true,
             /*cert_recipients=*/1);
       }},
      // Byzantine weak-BA phase-1 leader: commit certificate for everyone,
      // finalize certificate for one — the decided/undecided split that
      // drives the help round (Alg 3 lines 5-13).
      {"cert-split",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::WbaCertSplit>(
             p.instance, /*phase=*/1, WireValue::plain(Value(p.value)),
             /*extra_corruptions=*/p.f > 0 ? p.f - 1 : 0,
             /*finalize_recipients=*/1);
       }},
      // NOTE-2 driver: finalize certificate withheld during the phases and
      // disclosed via <help> to exactly one process, whose late decision
      // must be re-broadcast inside the safety window (Alg 3 line 22).
      {"poison-help",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::WbaCertSplit>(
             p.instance, /*phase=*/1, WireValue::plain(Value(p.value)),
             /*extra_corruptions=*/p.f > 0 ? p.f - 1 : 0,
             /*finalize_recipients=*/0, /*poison_help=*/true);
       }},
      // Covert certificate mint: a cert-split leaves some processes
      // undecided past the phases, so their help_reqs leak partials the
      // covert spammers complete into a fallback certificate — which no
      // correct process can assemble itself (too few public partials).
      // Disclosing it to one process drives the Alg 3 line 17 note and
      // line 21 echo paths. Needs f >= 2 to both split and complete.
      {"covert-spam",
       [](const AdversaryParams& p) {
         std::vector<std::unique_ptr<Adversary>> parts;
         parts.push_back(std::make_unique<adv::WbaCertSplit>(
             p.instance, /*phase=*/1, WireValue::plain(Value(p.value)),
             /*extra_corruptions=*/0, /*finalize_recipients=*/1));
         parts.push_back(std::make_unique<adv::WbaHelpSpam>(
             p.instance, protocol_help_round(p.protocol, p.n),
             /*corruptions=*/p.f > 0 ? p.f - 1 : 0,
             /*form_certificate=*/true, /*cert_recipients=*/1,
             /*covert=*/true));
         return std::make_unique<adv::Composite>(std::move(parts));
       }},
      // Byzantine BB vetting leader that reveals its minted idk certificate
      // to only half the processes (NOTE-1: later leaders relay the cert).
      {"bb-partial-relay",
       [](const AdversaryParams& p) {
         return std::make_unique<adv::BbPartialRelay>(
             p.instance, /*phase=*/1, std::max(1u, p.n / 2));
       }},
      // Byzantine Algorithm 5 leader; the seed picks silent / split-propose
      // / hide-decide, so a seed sweep covers all three window behaviors.
      {"alg5-withhold",
       [](const AdversaryParams& p) {
         const auto mode = static_cast<adv::Alg5Mode>(p.seed % 3);
         return std::make_unique<adv::Alg5Withhold>(p.instance, mode,
                                                    /*reach=*/1);
       }},
  };
  return kTable;
}

}  // namespace

std::unique_ptr<Adversary> make_adversary(std::string_view name,
                                          const AdversaryParams& params) {
  for (const auto& [entry_name, factory] : table()) {
    if (entry_name == name) return factory(params);
  }
  return nullptr;
}

const std::vector<std::string>& adversary_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(table().size());
    for (const auto& [name, factory] : table()) names.push_back(name);
    return names;
  }();
  return kNames;
}

std::string adversary_names_joined(std::string_view sep) {
  std::string out;
  for (const auto& name : adversary_names()) {
    if (!out.empty()) out += sep;
    out += name;
  }
  return out;
}

}  // namespace mewc::check
