#include "check/coverage.hpp"

namespace mewc::cov {

namespace detail {
thread_local CoverageMap* g_active = nullptr;
}  // namespace detail

namespace {

constexpr std::array<std::string_view, kSiteCount> kSiteNames = {
#define MEWC_COV_NAME(name) #name,
    MEWC_COV_SITE_LIST(MEWC_COV_NAME)
#undef MEWC_COV_NAME
};

}  // namespace

std::string_view site_name(Site s) {
  return kSiteNames[static_cast<std::size_t>(s)];
}

std::size_t site_index_of(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (kSiteNames[i] == name) return i;
  }
  return kSiteCount;
}

std::size_t Bitmap::count() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words) {
    std::uint64_t v = w;
    while (v != 0) {
      v &= v - 1;
      ++n;
    }
  }
  return n;
}

bool Bitmap::merge(const Bitmap& other) {
  bool grew = false;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint64_t before = words[i];
    words[i] |= other.words[i];
    grew = grew || words[i] != before;
  }
  return grew;
}

Bitmap Bitmap::minus(const Bitmap& other) const {
  Bitmap out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    out.words[i] = words[i] & ~other.words[i];
  }
  return out;
}

bool Bitmap::covers(const Bitmap& required) const {
  for (std::size_t i = 0; i < words.size(); ++i) {
    if ((required.words[i] & ~words[i]) != 0) return false;
  }
  return true;
}

bool Bitmap::any() const {
  for (const std::uint64_t w : words) {
    if (w != 0) return true;
  }
  return false;
}

Bitmap to_bitmap(const CoverageMap& map) {
  Bitmap b;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (map.hits[i] != 0) b.set(static_cast<Site>(i));
  }
  return b;
}

}  // namespace mewc::cov
