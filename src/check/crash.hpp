// Crash-injection cells for the durable SMR engine: the DST layer that
// kills a replica mid-run, tears its last WAL write at a seeded byte
// offset, recovers, and asserts the resumed replica is indistinguishable
// from one that never crashed — digest-identical ledger, kv state, word
// meters, checkpoint stream, and byte-identical WAL.
//
// A CrashCellSpec fully determines both runs (reference and crashed), so
// crash cells get the same campaign / shrink / bit-for-bit replay
// machinery as protocol cells: `mewc_vopr --crash-grid` sweeps them,
// failures shrink greedily, and the minimal cell round-trips through a
// `mewc_crash_replay` JSON file.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/campaign.hpp"
#include "check/checkers.hpp"
#include "check/json.hpp"
#include "smr/recovery.hpp"

namespace mewc::check {

/// How the last durable WAL record is mutilated before recovery.
enum class TearMode : std::uint8_t {
  kNone = 0,      // clean crash: record fully fsynced
  kTruncate = 1,  // drop the record's tail from a seeded offset
  kCorrupt = 2,   // flip a byte at a seeded offset
};

[[nodiscard]] const char* tear_name(TearMode mode);
[[nodiscard]] std::optional<TearMode> parse_tear(std::string_view name);

/// Everything that determines one crash-injection run pair.
struct CrashCellSpec {
  std::uint32_t n = 5;
  std::uint32_t t = 2;
  std::uint32_t f = 0;            // per-slot adversary corruption budget
  std::string adversary = "none";
  std::uint64_t slots = 8;        // total slots both runs commit
  std::uint32_t checkpoint_every = 2;
  std::uint64_t crash_slot = 3;   // die after committing this slot
  std::uint32_t workers = 2;      // engine workers (both runs)
  std::uint64_t seed = 0x5e7;
  TearMode tear = TearMode::kTruncate;
  std::uint64_t tear_seed = 0;    // picks the byte offset inside the record
  /// Crash between the checkpoint's WAL record and the snapshot cut
  /// instead of right after the slot record.
  bool after_checkpoint = false;
  /// Crash *during* the snapshot write at the crash slot's checkpoint: the
  /// old snapshot is gone and the new one is truncated at a tear_seed-picked
  /// offset (what a non-atomic truncate-then-write leaves behind). Recovery
  /// must drop the torn blob and heal the snapshot from the WAL alone.
  bool mid_snapshot = false;

  [[nodiscard]] std::string label() const;
};

/// Deterministic workload: the kv command slot `slot` proposes. Pure in
/// (seed, slot), so the continuation run re-proposes exactly what the
/// crashed run proposed.
[[nodiscard]] smr::Command crash_proposal(std::uint64_t seed,
                                          std::uint64_t slot);

/// The checkable outcome of one crash cell: the uninterrupted reference
/// run's final state next to the crash->tear->recover->continue run's.
struct CrashRunRecord {
  CrashCellSpec cell;

  // Reference (uninterrupted) run.
  std::uint64_t ref_digest = 0;
  std::uint64_t ref_kv_digest = 0;
  std::uint64_t ref_total_words = 0;
  std::uint64_t ref_checkpoints = 0;
  bool ref_healthy = false;
  std::vector<smr::SlotRecord> ref_slots;
  std::vector<std::uint8_t> ref_wal;

  // Crash run: what survived + recovery outcome.
  std::size_t torn_record_offset = 0;  // frame start of the mutilated record
  std::size_t tear_offset = 0;         // byte offset of the tear within it
  bool tear_applied = false;
  bool snapshot_torn = false;          // mid_snapshot tear actually applied
  std::size_t snapshot_tear_offset = 0;  // bytes of the new snapshot kept
  smr::RecoveryStats recovery;
  std::uint64_t recovered_slots = 0;
  std::uint64_t recovered_digest = 0;

  // Crash run: final state after the continuation.
  std::uint64_t final_digest = 0;
  std::uint64_t final_kv_digest = 0;
  std::uint64_t final_total_words = 0;
  std::uint64_t final_checkpoints = 0;
  bool final_healthy = false;
  std::vector<std::uint8_t> final_wal;

  // Catch-up from the reference replica's store (runs when the reference
  // cut at least one snapshot).
  bool catchup_attempted = false;
  smr::CatchUpStats catchup;
  std::uint64_t catchup_digest = 0;
  std::uint64_t catchup_kv_digest = 0;
};

/// Runs the reference run, the crash run (kill at crash_slot, tear the
/// last WAL record, recover, continue to `slots`), and the catch-up probe.
[[nodiscard]] CrashRunRecord run_crash_cell(const CrashCellSpec& cell);

/// Crash invariant checkers over a completed record:
///   crash-prefix   recovered state is a verified prefix of the reference
///                  (never a partial or fabricated slot)
///   crash-digest   final ledger digest/length matches the reference
///   crash-kv       final kv digest matches the reference
///   crash-meter    total words + checkpoint count match the reference
///   crash-wal      final WAL bytes are bit-identical to the reference's
///   crash-health   recovery preserved the health verdict
///   crash-catchup  certified catch-up reproduced the reference state
[[nodiscard]] std::vector<Violation> check_crash_run(
    const CrashRunRecord& record);

/// run_crash_cell + check_crash_run.
[[nodiscard]] std::vector<Violation> crash_violations_of(
    const CrashCellSpec& cell);

/// Declarative crash campaign grid (tools/grids/crash*.json): the cross
/// product of every axis, minus cells with crash_slot >= slots or f > t.
struct CrashGridSpec {
  std::vector<GridSize> sizes;
  std::vector<std::uint64_t> slot_counts = {8};
  std::vector<std::uint32_t> cadences = {2};
  std::vector<std::uint64_t> crash_slots = {3};
  std::vector<std::uint32_t> worker_counts = {2};
  std::vector<std::string> adversaries = {"none"};
  std::vector<std::uint32_t> fs = {0};
  std::vector<std::uint64_t> seeds = {0x5e7};
  std::vector<TearMode> tears = {TearMode::kTruncate};
  std::vector<std::uint64_t> tear_seeds = {0};
  std::vector<bool> after_checkpoint = {false};
  std::vector<bool> mid_snapshot = {false};

  [[nodiscard]] std::vector<CrashCellSpec> enumerate() const;
  [[nodiscard]] static bool from_json(const json::Value& v, CrashGridSpec* out,
                                      std::string* error);
};

struct CrashCellResult {
  CrashCellSpec cell;
  std::vector<Violation> violations;
  bool used_snapshot = false;
  std::uint64_t records_replayed = 0;
  std::uint64_t wal_bytes_truncated = 0;
  bool checkpoint_completed = false;  // pending checkpoint re-run on recovery
  std::uint64_t catchup_words = 0;    // certified state-sync transfer cost

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

struct CrashCampaignReport {
  std::vector<CrashCellResult> results;
  std::uint64_t cells_total = 0;
  std::uint64_t cells_passed = 0;

  [[nodiscard]] std::uint64_t cells_failed() const {
    return cells_total - cells_passed;
  }
  [[nodiscard]] const CrashCellResult* first_failure() const;
  [[nodiscard]] json::Value to_json() const;
};

/// Runs the whole crash grid across `jobs` worker threads (0: hardware
/// concurrency); cells share no mutable state.
[[nodiscard]] CrashCampaignReport run_crash_campaign(
    const CrashGridSpec& grid, unsigned jobs = 0,
    const std::function<void(const CrashCellResult&)>& on_cell = nullptr);

struct CrashShrinkResult {
  CrashCellSpec minimal;
  std::string checker;
  std::uint32_t runs = 0;
  std::uint32_t steps = 0;
};

/// Greedy fixpoint shrink over crash-cell moves (fewer slots, earlier
/// crash, smaller system, one worker, tighter cadence, smaller seeds,
/// simpler tear), accepting candidates that still fail the same checker.
[[nodiscard]] CrashShrinkResult shrink_crash_failure(
    const CrashCellSpec& failing, std::uint32_t max_runs = 96);

/// Bit-for-bit replay file for crash cells (`mewc_vopr --replay` detects
/// the `mewc_crash_replay: 1` tag and re-runs the cell through
/// crash_violations_of).
struct CrashReplay {
  CrashCellSpec cell;
  std::vector<Violation> expected;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static bool from_json(const json::Value& v, CrashReplay* out,
                                      std::string* error);
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static bool load(const std::string& path, CrashReplay* out,
                                 std::string* error);
};

}  // namespace mewc::check
