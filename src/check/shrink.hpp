// Failing-run minimization and replay. When a campaign cell violates an
// invariant, the shrinker greedily searches smaller configurations — fewer
// processes, lower t, bisected corruption budget, smaller seeds — that
// still fail the same checker, and the result is written to a replay file
// that `mewc_vopr --replay` reproduces bit-for-bit (the CellSpec fully
// determines the run).
#pragma once

#include <functional>
#include <string>

#include "check/campaign.hpp"

namespace mewc::check {

/// Runs the cell and evaluates all checkers (convenience used by the
/// shrinker, the tests and the replay tool).
[[nodiscard]] std::vector<Violation> violations_of(const CellSpec& cell,
                                                   const CheckerOptions& opts);

struct ShrinkOptions {
  /// Upper bound on candidate re-runs; shrinking stops (keeping the best
  /// cell so far) when exhausted.
  std::uint32_t max_runs = 96;
};

struct ShrinkResult {
  CellSpec minimal;           // smallest failing cell found
  std::string checker;        // the checker that keeps failing
  std::uint32_t runs = 0;     // candidate runs spent
  std::uint32_t steps = 0;    // accepted shrink steps
};

/// Greedy fixpoint shrink: repeatedly tries the candidate moves and accepts
/// any that still fails `checker` (the first violation's checker when empty).
[[nodiscard]] ShrinkResult shrink_failure(const CellSpec& failing,
                                          const CheckerOptions& opts,
                                          const ShrinkOptions& shrink = {});

/// Outcome of a predicate-based shrink.
struct CellShrink {
  CellSpec minimal;
  std::uint32_t runs = 0;   // candidate evaluations spent
  std::uint32_t steps = 0;  // accepted shrink steps
};

/// Generalized greedy shrink over the same candidate moves: accepts any
/// candidate for which `keep` holds. shrink_failure is this with "still
/// fails the same checker"; the fuzzer's corpus minimization uses "still
/// covers the entry's novel sites". `keep` must be deterministic; `start`
/// is assumed to satisfy it.
[[nodiscard]] CellShrink shrink_cell(
    const CellSpec& start, const std::function<bool(const CellSpec&)>& keep,
    std::uint32_t max_runs = 96);

/// Replay file: the minimal cell, the checker options, and the expected
/// violations, as JSON.
struct Replay {
  CellSpec cell;
  CheckerOptions checkers;
  std::vector<Violation> expected;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static bool from_json(const json::Value& v, Replay* out,
                                      std::string* error);
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static bool load(const std::string& path, Replay* out,
                                 std::string* error);
};

}  // namespace mewc::check
