// ASCII space-time diagram of a protocol run, extracted from mewc_trace so
// the replay tool (mewc_vopr --replay) renders failing runs the same way.
// Rows are rounds with traffic (silent rounds elided — the paper's silent
// phases show up as blank stretches), columns are processes, one letter per
// message kind, lowercase for Byzantine senders.
#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace mewc::sim {

/// One letter per message kind, stable across runs ('?' for unknown kinds).
[[nodiscard]] char glyph_for(const std::string& kind);

class SpaceTime {
 public:
  explicit SpaceTime(std::uint32_t n) : n_(n) {}

  /// Feed messages live (harness recorder) or post-hoc from a record.
  void observe(const Message& m, bool correct) {
    observe(m.from, m.round, m.body->kind(), correct);
  }
  void observe(ProcessId from, Round round, const std::string& kind,
               bool correct);

  /// Prints the grid plus the per-round kind legend.
  void render(std::FILE* out, Round total_rounds) const;

 private:
  std::uint32_t n_;
  std::map<Round, std::vector<char>> cells_;
  std::map<Round, std::set<std::string>> kinds_;
};

}  // namespace mewc::sim
