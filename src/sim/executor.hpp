// Execution API (DESIGN.md §14): protocols run behind the IExecutor
// interface, constructed through make_executor(). Two implementations:
//
//  * Executor — the round-lockstep simulator (this header). One global
//    loop drives all n processes and the adversary through the synchronous
//    schedule via direct inbox writes (SyncNetwork).
//  * EventExecutor (sim/event_executor.hpp) — event-driven: processes
//    exchange envelopes through a net::Transport and rounds close when a
//    net::IRoundSync policy fires. The same class hosts a single process
//    of a socket cluster (mewc_node) and all n processes over an
//    in-process loopback; over loopback its transcripts are bit-identical
//    to the lockstep executor's (pinned by the DST equivalence grid).
//
// Hook invariant: observers and transformers are passed at construction in
// one ExecutorHooks bundle and are immutable for the executor's lifetime.
// There is deliberately no setter — a hook installed mid-run would see a
// suffix of the traffic, so recorded transcripts and digests would no
// longer be a pure function of (spec, inputs, adversary). The old
// set_payload_transform / set_message_recorder pre-run setter pair is gone.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "crypto/family.hpp"
#include "net/network.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"

namespace mewc {

/// Message-path hooks, fixed at executor construction (see header comment).
struct ExecutorHooks {
  /// Per-message payload transformer applied at post time — the wire
  /// codec's round-trip mode re-encodes and re-parses every message through
  /// it, proving nothing depends on in-memory payload sharing.
  std::function<PayloadPtr(const PayloadPtr&)> transform;
  /// Observer of every link-crossing message (self-deliveries excluded,
  /// matching the meter). Trace tooling and the DST recorder hang off this.
  std::function<void(const Message&, bool correct)> recorder;
};

/// Which IExecutor implementation drives a run.
enum class ExecutorKind {
  kLockstep,  // global synchronous loop (the original simulator)
  kEvent,     // transport + round-sync events, loopback by default
};

[[nodiscard]] const char* executor_kind_name(ExecutorKind kind);
[[nodiscard]] std::optional<ExecutorKind> parse_executor_kind(
    std::string_view name);

/// What the harness (and every other driver of a run) needs from an
/// executor: run the schedule, then expose the meter, the corruption set
/// and the surviving processes for result extraction.
class IExecutor {
 public:
  virtual ~IExecutor() = default;

  /// Runs rounds 1..total_rounds.
  virtual void run(Round total_rounds) = 0;

  [[nodiscard]] virtual const Meter& meter() const = 0;
  [[nodiscard]] virtual bool is_corrupted(ProcessId pid) const = 0;
  [[nodiscard]] virtual std::uint32_t corrupted_count() const = 0;
  [[nodiscard]] virtual std::vector<ProcessId> corrupted() const = 0;
  [[nodiscard]] virtual IProcess& process(ProcessId pid) = 0;
  [[nodiscard]] virtual const IProcess& process(ProcessId pid) const = 0;
  /// The key bundle of process pid; protocols hold a pointer to theirs.
  [[nodiscard]] virtual const KeyBundle& bundle(ProcessId pid) const = 0;
};

/// Round-lockstep executor: drives correct processes and the adversary
/// through the synchronous schedule and owns the key material.
///
/// DEPRECATED (direct construction): new code obtains an executor through
/// make_executor() so the ExecutorKind stays a run parameter. The public
/// constructor remains for one release as the migration adapter for tests
/// and benches that poke executor internals.
class Executor final : public IExecutor {
 public:
  /// `processes[i]` is the correct implementation of process i; entries for
  /// processes the adversary corrupts at setup simply never run. `bundles`
  /// are the key bundles the harness issued (processes hold non-owning
  /// pointers into this vector; vector move keeps element addresses stable).
  Executor(const ThresholdFamily& family, std::vector<KeyBundle> bundles,
           std::vector<std::unique_ptr<IProcess>> processes,
           Adversary& adversary, ExecutorHooks hooks = {});

  /// Runs rounds 1..total_rounds.
  void run(Round total_rounds) override;

  [[nodiscard]] const Meter& meter() const override {
    return network_.meter();
  }
  [[nodiscard]] const SyncNetwork& network() const { return network_; }

  [[nodiscard]] bool is_corrupted(ProcessId pid) const override;
  [[nodiscard]] std::uint32_t corrupted_count() const override;
  [[nodiscard]] std::vector<ProcessId> corrupted() const override;

  [[nodiscard]] const KeyBundle& bundle(ProcessId pid) const override {
    return bundles_[pid];
  }

  [[nodiscard]] IProcess& process(ProcessId pid) override {
    return *processes_[pid];
  }
  [[nodiscard]] const IProcess& process(ProcessId pid) const override {
    return *processes_[pid];
  }

 private:
  class Control;

  const ThresholdFamily& family_;
  SyncNetwork network_;
  std::vector<KeyBundle> bundles_;
  std::vector<std::unique_ptr<IProcess>> processes_;
  Adversary& adversary_;
  std::vector<bool> corrupted_;
  std::uint32_t corrupted_count_ = 0;
  // Reused send buffers (cleared, never reconstructed): after the first few
  // rounds the send path allocates nothing. The rushing view itself lives
  // in the network, recorded post-transform at post time.
  Outbox send_outbox_;
  Outbox adversary_outbox_;
  Round current_round_ = 0;
};

/// The one production entry point for building an executor. kLockstep
/// yields the classic simulator; kEvent yields an EventExecutor hosting
/// all n processes over an owned loopback transport with quiescence round
/// closure (distributed deployments construct EventExecutor directly with
/// their transport — see sim/event_executor.hpp).
[[nodiscard]] std::unique_ptr<IExecutor> make_executor(
    ExecutorKind kind, const ThresholdFamily& family,
    std::vector<KeyBundle> bundles,
    std::vector<std::unique_ptr<IProcess>> processes, Adversary& adversary,
    ExecutorHooks hooks = {});

}  // namespace mewc
