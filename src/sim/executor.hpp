// Round-lockstep executor: drives correct processes and the adversary
// through the synchronous schedule and owns the key material.
#pragma once

#include <memory>
#include <vector>

#include "crypto/family.hpp"
#include "net/network.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"

namespace mewc {

class Executor {
 public:
  /// `processes[i]` is the correct implementation of process i; entries for
  /// processes the adversary corrupts at setup simply never run. `bundles`
  /// are the key bundles the harness issued (processes hold non-owning
  /// pointers into this vector; vector move keeps element addresses stable).
  Executor(const ThresholdFamily& family, std::vector<KeyBundle> bundles,
           std::vector<std::unique_ptr<IProcess>> processes,
           Adversary& adversary);

  /// Runs rounds 1..total_rounds.
  void run(Round total_rounds);

  /// Installs a per-message payload transformer (see SyncNetwork). Call
  /// before run().
  void set_payload_transform(
      std::function<PayloadPtr(const PayloadPtr&)> transform) {
    network_.set_transform(std::move(transform));
  }

  /// Installs a per-message observer (see SyncNetwork). Call before run().
  void set_message_recorder(
      std::function<void(const Message&, bool)> recorder) {
    network_.set_recorder(std::move(recorder));
  }

  [[nodiscard]] const Meter& meter() const { return network_.meter(); }
  [[nodiscard]] const SyncNetwork& network() const { return network_; }

  [[nodiscard]] bool is_corrupted(ProcessId pid) const;
  [[nodiscard]] std::uint32_t corrupted_count() const;
  [[nodiscard]] std::vector<ProcessId> corrupted() const;

  /// The key bundle of process pid; protocols hold a pointer to theirs.
  [[nodiscard]] const KeyBundle& bundle(ProcessId pid) const {
    return bundles_[pid];
  }

  [[nodiscard]] IProcess& process(ProcessId pid) { return *processes_[pid]; }
  [[nodiscard]] const IProcess& process(ProcessId pid) const {
    return *processes_[pid];
  }

 private:
  class Control;

  const ThresholdFamily& family_;
  SyncNetwork network_;
  std::vector<KeyBundle> bundles_;
  std::vector<std::unique_ptr<IProcess>> processes_;
  Adversary& adversary_;
  std::vector<bool> corrupted_;
  std::uint32_t corrupted_count_ = 0;
  // Reused send buffers (cleared, never reconstructed): after the first few
  // rounds the send path allocates nothing. The rushing view itself lives
  // in the network, recorded post-transform at post time.
  Outbox send_outbox_;
  Outbox adversary_outbox_;
  Round current_round_ = 0;
};

}  // namespace mewc
