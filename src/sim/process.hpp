// Interface every correct protocol process implements. The executor drives
// each round in two steps, matching the paper's pseudocode structure:
// "Round r: [send what the algorithm says] ... if received [...] then
// [state transition]".
#pragma once

#include <span>

#include "common/types.hpp"
#include "net/message.hpp"
#include "net/outbox.hpp"

namespace mewc {

class IProcess {
 public:
  virtual ~IProcess() = default;

  /// Emits this round's messages based on state as of the end of round r-1.
  virtual void on_send(Round r, Outbox& out) = 0;

  /// Consumes everything delivered in round r and transitions state.
  virtual void on_receive(Round r, std::span<const Message> inbox) = 0;
};

}  // namespace mewc
