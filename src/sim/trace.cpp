#include "sim/trace.hpp"

#include <cctype>

namespace mewc::sim {

char glyph_for(const std::string& kind) {
  // mewc-lint: allow(R-meter) render-time glyph table, not a metering path
  static const std::map<std::string, char> table = {
      {"bb.sender_value", 'S'}, {"bb.help_req", 'H'},
      {"bb.reply_value", 'R'},  {"bb.idk", 'I'},
      {"bb.leader_value", 'L'}, {"wba.propose", 'P'},
      {"wba.vote", 'V'},        {"wba.commit", 'C'},
      {"wba.decide", 'D'},      {"wba.finalized", 'F'},
      {"wba.help_req", 'H'},    {"wba.help", 'A'},
      {"wba.fallback", 'B'},    {"sba.input", 'N'},
      {"sba.propose_cert", 'P'},{"sba.decide_vote", 'D'},
      {"sba.decide_cert", 'C'}, {"sba.fallback", 'B'},
      {"ds.relay", '*'},
  };
  auto it = table.find(kind);
  return it == table.end() ? '?' : it->second;
}

void SpaceTime::observe(ProcessId from, Round round, const std::string& kind,
                        bool correct) {
  auto& row = cells_[round];
  if (row.empty()) row.assign(n_, '.');
  const char g = glyph_for(kind);
  if (from < n_) {
    row[from] =
        correct ? g : static_cast<char>(std::tolower(static_cast<int>(g)));
  }
  kinds_[round].insert(kind);
}

void SpaceTime::render(std::FILE* out, Round total_rounds) const {
  std::fprintf(out, "round |");
  for (ProcessId p = 0; p < n_; ++p) std::fprintf(out, "%2u", p % 100);
  std::fprintf(out, " | kinds\n");
  std::fprintf(out, "------+%s-+------\n",
               std::string(2 * n_, '-').c_str());
  Round last_printed = 0;
  for (const auto& [round, row] : cells_) {
    if (last_printed != 0 && round > last_printed + 1) {
      std::fprintf(out, "  ... |%s |  (%u silent rounds)\n",
                   std::string(2 * n_, ' ').c_str(),
                   round - last_printed - 1);
    }
    std::fprintf(out, "%5u |", round);
    for (const char c : row) std::fprintf(out, " %c", c);
    std::fprintf(out, " | ");
    bool first = true;
    const auto kinds_it = kinds_.find(round);
    if (kinds_it != kinds_.end()) {
      for (const auto& k : kinds_it->second) {
        std::fprintf(out, "%s%s", first ? "" : ", ", k.c_str());
        first = false;
      }
    }
    std::fprintf(out, "\n");
    last_printed = round;
  }
  if (last_printed < total_rounds) {
    std::fprintf(out, "  ... |%s |  (%u silent rounds to the end)\n",
                 std::string(2 * n_, ' ').c_str(),
                 total_rounds - last_printed);
  }
}

}  // namespace mewc::sim
