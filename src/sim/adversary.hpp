// The adaptive adversary (paper Section 2): may corrupt up to t processes
// at any point in the run; corrupted processes behave arbitrarily. The
// executor gives the adversary a *rushing* position — in each round it acts
// after observing every message correct processes sent in that round — and
// hands it the key bundles (individual key + threshold shares) of corrupted
// processes, modeling full key compromise. It can never sign for a process
// it has not corrupted; that is the PKI assumption.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/family.hpp"
#include "net/message.hpp"
#include "net/outbox.hpp"

namespace mewc {

/// Executor-provided capabilities surface for the adversary. Corruption and
/// traffic injection go through this object so the t-bound and key custody
/// are enforced in one place.
class AdversaryControl {
 public:
  virtual ~AdversaryControl() = default;

  [[nodiscard]] virtual std::uint32_t n() const = 0;
  [[nodiscard]] virtual std::uint32_t t() const = 0;

  /// Corrupts `pid` (idempotent). Returns false if the t-bound would be
  /// exceeded or pid is out of range; the process stops executing from the
  /// next send step onward and its keys become available via bundle().
  virtual bool corrupt(ProcessId pid) = 0;
  [[nodiscard]] virtual bool is_corrupted(ProcessId pid) const = 0;
  [[nodiscard]] virtual std::uint32_t corrupted_count() const = 0;

  /// Key bundle of a corrupted process. Aborts if pid is not corrupted —
  /// the adversary cannot touch uncompromised key material.
  [[nodiscard]] virtual const KeyBundle& bundle(ProcessId pid) const = 0;

  /// Injects a message from a corrupted process. Ignored if pid is not
  /// corrupted (a Byzantine process cannot spoof a correct link).
  virtual void send_as(ProcessId pid, ProcessId to, PayloadPtr body) = 0;
  virtual void broadcast_as(ProcessId pid, const PayloadPtr& body) = 0;

  /// Everything posted by correct processes in the current round (rushing
  /// visibility). Byzantine recipients read their inboxes from here too.
  [[nodiscard]] virtual std::span<const Message> posted_this_round() const = 0;

  /// Crypto toolkit access for building certificates from captured partials.
  [[nodiscard]] virtual const ThresholdFamily& crypto() const = 0;
};

/// Base adversary: corrupts nothing, sends nothing (f = 0 runs).
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Called once before round 1; typical strategies corrupt their static
  /// victim set here.
  virtual void setup(AdversaryControl& ctrl) { (void)ctrl; }

  /// Called at the top of each round, before correct processes send. This is
  /// where adaptive strategies corrupt mid-run (e.g. the upcoming leader).
  virtual void pre_round(Round r, AdversaryControl& ctrl) {
    (void)r;
    (void)ctrl;
  }

  /// Called after correct processes' round-r messages are posted (rushing).
  /// Inject Byzantine traffic for round r here.
  virtual void act(Round r, AdversaryControl& ctrl) {
    (void)r;
    (void)ctrl;
  }
};

}  // namespace mewc
