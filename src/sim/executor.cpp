#include "sim/executor.hpp"

#include "common/check.hpp"
#include "sim/event_executor.hpp"

namespace mewc {

const char* executor_kind_name(ExecutorKind kind) {
  return kind == ExecutorKind::kEvent ? "event" : "lockstep";
}

std::optional<ExecutorKind> parse_executor_kind(std::string_view name) {
  if (name == "lockstep") return ExecutorKind::kLockstep;
  if (name == "event") return ExecutorKind::kEvent;
  return std::nullopt;
}

/// Concrete capabilities surface handed to the adversary each round.
class Executor::Control final : public AdversaryControl {
 public:
  explicit Control(Executor& e) : e_(e) {}

  [[nodiscard]] std::uint32_t n() const override { return e_.network_.n(); }
  [[nodiscard]] std::uint32_t t() const override { return e_.family_.t(); }

  bool corrupt(ProcessId pid) override {
    if (pid >= n()) return false;
    if (e_.corrupted_[pid]) return true;
    if (e_.corrupted_count_ >= t()) return false;
    e_.corrupted_[pid] = true;
    ++e_.corrupted_count_;
    return true;
  }

  [[nodiscard]] bool is_corrupted(ProcessId pid) const override {
    return pid < n() && e_.corrupted_[pid];
  }

  [[nodiscard]] std::uint32_t corrupted_count() const override {
    return e_.corrupted_count_;
  }

  [[nodiscard]] const KeyBundle& bundle(ProcessId pid) const override {
    MEWC_CHECK_MSG(is_corrupted(pid),
                   "adversary touched uncompromised key material");
    return e_.bundles_[pid];
  }

  void send_as(ProcessId pid, ProcessId to, PayloadPtr body) override {
    if (!is_corrupted(pid) || body == nullptr) return;
    // Adversary-chosen recipients are validated here as well as in the
    // network: an id with no process behind it has no link, so the message
    // is dropped — never an out-of-bounds inbox write (see SyncNetwork).
    if (to >= n()) return;
    Outbox& out = e_.adversary_outbox_;
    out.clear();
    out.send(to, std::move(body));
    e_.network_.post(pid, e_.current_round_, out, /*correct=*/false);
  }

  void broadcast_as(ProcessId pid, const PayloadPtr& body) override {
    if (!is_corrupted(pid) || body == nullptr) return;
    Outbox& out = e_.adversary_outbox_;
    out.clear();
    out.broadcast(body);
    e_.network_.post(pid, e_.current_round_, out, /*correct=*/false);
  }

  [[nodiscard]] std::span<const Message> posted_this_round() const override {
    return e_.network_.posted_this_round();
  }

  [[nodiscard]] const ThresholdFamily& crypto() const override {
    return e_.family_;
  }

 private:
  Executor& e_;
};

Executor::Executor(const ThresholdFamily& family,
                   std::vector<KeyBundle> bundles,
                   std::vector<std::unique_ptr<IProcess>> processes,
                   Adversary& adversary, ExecutorHooks hooks)
    : family_(family),
      network_(family.n()),
      bundles_(std::move(bundles)),
      processes_(std::move(processes)),
      adversary_(adversary),
      corrupted_(family.n(), false),
      send_outbox_(family.n()),
      adversary_outbox_(family.n()) {
  MEWC_CHECK(bundles_.size() == family.n());
  MEWC_CHECK(processes_.size() == family.n());
  if (hooks.transform) network_.set_transform(std::move(hooks.transform));
  if (hooks.recorder) network_.set_recorder(std::move(hooks.recorder));
}

void Executor::run(Round total_rounds) {
  Control ctrl(*this);
  adversary_.setup(ctrl);

  const std::uint32_t n = network_.n();
  for (Round r = 1; r <= total_rounds; ++r) {
    current_round_ = r;
    adversary_.pre_round(r, ctrl);

    // Correct sends. The network records them as the adversary's rushing
    // view (post-transform, exactly as delivered and metered); the send
    // buffer is reused across processes and rounds, so the steady-state
    // loop performs no heap allocation.
    network_.begin_sends();
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (corrupted_[pid]) continue;
      send_outbox_.clear();
      processes_[pid]->on_send(r, send_outbox_);
      network_.post(pid, r, send_outbox_, /*correct=*/true);
    }

    // Byzantine traffic, injected with full knowledge of the round's
    // correct messages (rushing adversary).
    adversary_.act(r, ctrl);

    // Delivery: every correct process consumes its round-r inbox.
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (corrupted_[pid]) continue;
      processes_[pid]->on_receive(r, network_.inbox(pid));
    }
    network_.end_round();
  }
}

bool Executor::is_corrupted(ProcessId pid) const {
  return pid < corrupted_.size() && corrupted_[pid];
}

std::uint32_t Executor::corrupted_count() const { return corrupted_count_; }

std::vector<ProcessId> Executor::corrupted() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < corrupted_.size(); ++p) {
    if (corrupted_[p]) out.push_back(p);
  }
  return out;
}

std::unique_ptr<IExecutor> make_executor(
    ExecutorKind kind, const ThresholdFamily& family,
    std::vector<KeyBundle> bundles,
    std::vector<std::unique_ptr<IProcess>> processes, Adversary& adversary,
    ExecutorHooks hooks) {
  if (kind == ExecutorKind::kEvent) {
    return std::make_unique<EventExecutor>(family, std::move(bundles),
                                           std::move(processes), adversary,
                                           std::move(hooks),
                                           EventExecutorConfig{});
  }
  return std::make_unique<Executor>(family, std::move(bundles),
                                    std::move(processes), adversary,
                                    std::move(hooks));
}

}  // namespace mewc
