#include "sim/executor.hpp"

#include "common/check.hpp"

namespace mewc {

/// Concrete capabilities surface handed to the adversary each round.
class Executor::Control final : public AdversaryControl {
 public:
  explicit Control(Executor& e) : e_(e) {}

  [[nodiscard]] std::uint32_t n() const override { return e_.network_.n(); }
  [[nodiscard]] std::uint32_t t() const override { return e_.family_.t(); }

  bool corrupt(ProcessId pid) override {
    if (pid >= n()) return false;
    if (e_.corrupted_[pid]) return true;
    if (e_.corrupted_count_ >= t()) return false;
    e_.corrupted_[pid] = true;
    ++e_.corrupted_count_;
    return true;
  }

  [[nodiscard]] bool is_corrupted(ProcessId pid) const override {
    return pid < n() && e_.corrupted_[pid];
  }

  [[nodiscard]] std::uint32_t corrupted_count() const override {
    return e_.corrupted_count_;
  }

  [[nodiscard]] const KeyBundle& bundle(ProcessId pid) const override {
    MEWC_CHECK_MSG(is_corrupted(pid),
                   "adversary touched uncompromised key material");
    return e_.bundles_[pid];
  }

  void send_as(ProcessId pid, ProcessId to, PayloadPtr body) override {
    if (!is_corrupted(pid) || body == nullptr) return;
    Outbox out(n());
    out.send(to, std::move(body));
    e_.network_.post(pid, e_.current_round_, out, /*correct=*/false);
  }

  void broadcast_as(ProcessId pid, const PayloadPtr& body) override {
    if (!is_corrupted(pid) || body == nullptr) return;
    Outbox out(n());
    out.broadcast(body);
    e_.network_.post(pid, e_.current_round_, out, /*correct=*/false);
  }

  [[nodiscard]] std::span<const Message> posted_this_round() const override {
    return e_.posted_this_round_;
  }

  [[nodiscard]] const ThresholdFamily& crypto() const override {
    return e_.family_;
  }

 private:
  Executor& e_;
};

Executor::Executor(const ThresholdFamily& family,
                   std::vector<KeyBundle> bundles,
                   std::vector<std::unique_ptr<IProcess>> processes,
                   Adversary& adversary)
    : family_(family),
      network_(family.n()),
      bundles_(std::move(bundles)),
      processes_(std::move(processes)),
      adversary_(adversary),
      corrupted_(family.n(), false) {
  MEWC_CHECK(bundles_.size() == family.n());
  MEWC_CHECK(processes_.size() == family.n());
}

void Executor::run(Round total_rounds) {
  Control ctrl(*this);
  adversary_.setup(ctrl);

  const std::uint32_t n = network_.n();
  for (Round r = 1; r <= total_rounds; ++r) {
    current_round_ = r;
    adversary_.pre_round(r, ctrl);

    // Correct sends, collected for the adversary's rushing view.
    posted_this_round_.clear();
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (corrupted_[pid]) continue;
      Outbox out(n);
      processes_[pid]->on_send(r, out);
      for (const auto& [to, body] : out.sends()) {
        Message m;
        m.from = pid;
        m.to = to;
        m.round = r;
        m.words = Message::cost_of(*body);
        m.body = body;
        posted_this_round_.push_back(m);
      }
      network_.post(pid, r, out, /*correct=*/true);
    }

    // Byzantine traffic, injected with full knowledge of the round's
    // correct messages (rushing adversary).
    adversary_.act(r, ctrl);

    // Delivery: every correct process consumes its round-r inbox.
    for (ProcessId pid = 0; pid < n; ++pid) {
      if (corrupted_[pid]) continue;
      processes_[pid]->on_receive(r, network_.inbox(pid));
    }
    network_.end_round();
  }
}

bool Executor::is_corrupted(ProcessId pid) const {
  return pid < corrupted_.size() && corrupted_[pid];
}

std::uint32_t Executor::corrupted_count() const { return corrupted_count_; }

std::vector<ProcessId> Executor::corrupted() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < corrupted_.size(); ++p) {
    if (corrupted_[p]) out.push_back(p);
  }
  return out;
}

}  // namespace mewc
