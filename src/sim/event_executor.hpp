// Event-driven executor (DESIGN.md §14). Where the lockstep Executor is
// one global loop writing into peer inboxes, an EventExecutor only ever
// sees two kinds of events: an envelope arriving on its net::Transport,
// and its net::IRoundSync declaring a round's traffic complete. That seam
// is what lets the same protocol code run
//
//  * all-in-one-process over a loopback transport with quiescence closure
//    (deterministic, clock-free — bit-identical to the lockstep executor,
//    pinned by the DST equivalence grid), and
//  * one-process-per-OS-node over TCP with mark/watermark closure and a
//    timeout fallback (`mewc_node`), where `config.local` names the single
//    hosted process and every other `processes` slot is null.
//
// Determinism note: this class never reads a clock. All waiting is
// delegated to Transport::receive(timeout_ms) and IRoundSync::closed();
// with the loopback/quiescence pair both are clock-free, so the event path
// stays inside the R-determinism envelope of src/sim.
#pragma once

#include <map>
#include <vector>

#include "net/transport.hpp"
#include "sim/executor.hpp"

namespace mewc {

struct EventExecutorConfig {
  /// Envelope instance tag; multi-instance transports demux on it.
  std::uint64_t instance = 0;
  /// Processes hosted by this executor; empty means all of 0..n-1.
  /// `processes` entries for non-hosted ids may be null.
  std::vector<ProcessId> local;
  /// Borrowed transport and round-closure policy; both null means the
  /// executor owns a LoopbackTransport closed by quiescence. A borrowed
  /// transport requires a borrowed sync (quiescence is meaningless on a
  /// transport whose in-flight state is unknowable).
  net::Transport* transport = nullptr;
  net::IRoundSync* sync = nullptr;
  /// Milliseconds a single receive() poll may block while waiting for the
  /// round to close (bounds closure-detection latency on idle links).
  int poll_ms = 1;
};

struct EventExecutorStats {
  std::uint64_t late_drops = 0;       // arrived for an already-closed round
  std::uint64_t foreign_drops = 0;    // addressed to a process not hosted here
  std::uint64_t future_buffered = 0;  // arrived before their round opened
};

class EventExecutor final : public IExecutor {
 public:
  EventExecutor(const ThresholdFamily& family, std::vector<KeyBundle> bundles,
                std::vector<std::unique_ptr<IProcess>> processes,
                Adversary& adversary, ExecutorHooks hooks,
                EventExecutorConfig config);
  ~EventExecutor() override;

  void run(Round total_rounds) override;

  [[nodiscard]] const Meter& meter() const override { return meter_; }
  [[nodiscard]] bool is_corrupted(ProcessId pid) const override;
  [[nodiscard]] std::uint32_t corrupted_count() const override;
  [[nodiscard]] std::vector<ProcessId> corrupted() const override;

  [[nodiscard]] const KeyBundle& bundle(ProcessId pid) const override {
    return bundles_[pid];
  }
  [[nodiscard]] IProcess& process(ProcessId pid) override {
    return *processes_[pid];
  }
  [[nodiscard]] const IProcess& process(ProcessId pid) const override {
    return *processes_[pid];
  }

  [[nodiscard]] const EventExecutorStats& stats() const { return stats_; }

 private:
  class Control;

  [[nodiscard]] bool is_local(ProcessId pid) const {
    return pid < local_mask_.size() && local_mask_[pid];
  }

  /// Posts everything a process sent this step through the transport,
  /// replicating SyncNetwork::post exactly: transform first, meter and
  /// record link-crossing traffic, append correct sends to the rushing
  /// view — all at post time, so the adversary and the meter see the
  /// bytes as delivered.
  void post(ProcessId from, Round round, const Outbox& out, bool correct);

  /// Routes one inbound envelope while round `current` is open.
  void accept(net::Envelope env, Round current);

  /// Pulls events until the sync closes the round, then drains the racing
  /// tail (data that arrived in the same instant as the closing mark).
  void drain(Round round);

  const ThresholdFamily& family_;
  std::vector<KeyBundle> bundles_;
  std::vector<std::unique_ptr<IProcess>> processes_;
  Adversary& adversary_;
  ExecutorHooks hooks_;
  std::uint64_t instance_;
  int poll_ms_;

  std::vector<ProcessId> local_;
  std::vector<bool> local_mask_;

  // Owned defaults when the config borrows nothing (loopback mode).
  std::unique_ptr<net::Transport> owned_transport_;
  std::unique_ptr<net::IRoundSync> owned_sync_;
  net::Transport* transport_ = nullptr;
  net::IRoundSync* sync_ = nullptr;

  Meter meter_;
  std::vector<std::vector<Message>> inboxes_;         // hosted pids only
  std::map<Round, std::vector<Message>> future_;      // early arrivals
  std::vector<Message> posted_;                       // rushing view
  std::vector<bool> corrupted_;
  std::uint32_t corrupted_count_ = 0;
  Outbox send_outbox_;
  Outbox adversary_outbox_;
  Round current_round_ = 0;
  EventExecutorStats stats_;
};

}  // namespace mewc
