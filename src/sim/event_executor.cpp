#include "sim/event_executor.hpp"

#include <utility>

#include "common/check.hpp"
#include "net/loopback.hpp"

namespace mewc {

/// Capabilities surface for the adversary, mirroring Executor::Control but
/// injecting through the transport. Corruption is only meaningful for
/// hosted processes (a socket deployment runs the null adversary; the
/// rushing position over loopback is exactly the lockstep one because the
/// rushing view is recorded at post time in both).
class EventExecutor::Control final : public AdversaryControl {
 public:
  explicit Control(EventExecutor& e) : e_(e) {}

  [[nodiscard]] std::uint32_t n() const override { return e_.family_.n(); }
  [[nodiscard]] std::uint32_t t() const override { return e_.family_.t(); }

  bool corrupt(ProcessId pid) override {
    if (pid >= n()) return false;
    if (e_.corrupted_[pid]) return true;
    if (e_.corrupted_count_ >= t()) return false;
    e_.corrupted_[pid] = true;
    ++e_.corrupted_count_;
    return true;
  }

  [[nodiscard]] bool is_corrupted(ProcessId pid) const override {
    return pid < n() && e_.corrupted_[pid];
  }

  [[nodiscard]] std::uint32_t corrupted_count() const override {
    return e_.corrupted_count_;
  }

  [[nodiscard]] const KeyBundle& bundle(ProcessId pid) const override {
    MEWC_CHECK_MSG(is_corrupted(pid),
                   "adversary touched uncompromised key material");
    return e_.bundles_[pid];
  }

  void send_as(ProcessId pid, ProcessId to, PayloadPtr body) override {
    if (!is_corrupted(pid) || body == nullptr) return;
    if (to >= n()) return;  // no such link: junk addressing is dropped
    Outbox& out = e_.adversary_outbox_;
    out.clear();
    out.send(to, std::move(body));
    e_.post(pid, e_.current_round_, out, /*correct=*/false);
  }

  void broadcast_as(ProcessId pid, const PayloadPtr& body) override {
    if (!is_corrupted(pid) || body == nullptr) return;
    Outbox& out = e_.adversary_outbox_;
    out.clear();
    out.broadcast(body);
    e_.post(pid, e_.current_round_, out, /*correct=*/false);
  }

  [[nodiscard]] std::span<const Message> posted_this_round() const override {
    return e_.posted_;
  }

  [[nodiscard]] const ThresholdFamily& crypto() const override {
    return e_.family_;
  }

 private:
  EventExecutor& e_;
};

EventExecutor::EventExecutor(const ThresholdFamily& family,
                             std::vector<KeyBundle> bundles,
                             std::vector<std::unique_ptr<IProcess>> processes,
                             Adversary& adversary, ExecutorHooks hooks,
                             EventExecutorConfig config)
    : family_(family),
      bundles_(std::move(bundles)),
      processes_(std::move(processes)),
      adversary_(adversary),
      hooks_(std::move(hooks)),
      instance_(config.instance),
      poll_ms_(config.poll_ms),
      meter_(family.n()),
      inboxes_(family.n()),
      corrupted_(family.n(), false),
      send_outbox_(family.n()),
      adversary_outbox_(family.n()) {
  MEWC_CHECK(bundles_.size() == family.n());
  MEWC_CHECK(processes_.size() == family.n());

  if (config.local.empty()) {
    for (ProcessId p = 0; p < family.n(); ++p) local_.push_back(p);
  } else {
    local_ = config.local;
  }
  local_mask_.assign(family.n(), false);
  for (ProcessId p : local_) {
    MEWC_CHECK_MSG(p < family.n(), "local process id out of range");
    local_mask_[p] = true;
    MEWC_CHECK_MSG(processes_[p] != nullptr, "hosted process is null");
  }

  if (config.transport == nullptr) {
    MEWC_CHECK_MSG(config.sync == nullptr,
                   "a borrowed sync needs a borrowed transport");
    auto loopback = std::make_unique<net::LoopbackTransport>();
    owned_sync_ = std::make_unique<net::QuiescenceSync>(*loopback);
    owned_transport_ = std::move(loopback);
    transport_ = owned_transport_.get();
    sync_ = owned_sync_.get();
  } else {
    MEWC_CHECK_MSG(config.sync != nullptr,
                   "a borrowed transport needs an explicit round sync");
    transport_ = config.transport;
    sync_ = config.sync;
  }
}

EventExecutor::~EventExecutor() = default;

void EventExecutor::post(ProcessId from, Round round, const Outbox& out,
                         bool correct) {
  for (const auto& [to, original] : out.sends()) {
    MEWC_CHECK(original != nullptr);
    if (to >= family_.n()) continue;  // no such link: dropped
    const PayloadPtr body =
        hooks_.transform ? hooks_.transform(original) : original;
    MEWC_CHECK(body != nullptr);
    Message m;
    m.from = from;
    m.to = to;
    m.round = round;
    m.words = Message::cost_of(*body);
    m.body = body;
    if (to != from) {
      meter_.record(from, round, m.words, body->logical_signatures(),
                    body->kind(), correct);
      if (hooks_.recorder) hooks_.recorder(m, correct);
    }
    if (correct) posted_.push_back(m);
    net::Envelope env;
    env.from = from;
    env.to = to;
    env.round = round;
    env.instance = instance_;
    env.body = std::move(m.body);
    transport_->send(std::move(env));
  }
}

void EventExecutor::accept(net::Envelope env, Round current) {
  if (!is_local(env.to)) {
    ++stats_.foreign_drops;
    return;
  }
  if (env.round < current) {
    // Synchrony: the round closed, its inboxes were consumed. A late
    // message no longer exists in the model; drop and count.
    ++stats_.late_drops;
    return;
  }
  Message m;
  m.from = env.from;
  m.to = env.to;
  m.round = env.round;
  m.words = Message::cost_of(*env.body);
  m.body = std::move(env.body);
  if (env.round == current) {
    inboxes_[m.to].push_back(std::move(m));
  } else {
    future_[m.round].push_back(std::move(m));
    ++stats_.future_buffered;
  }
}

void EventExecutor::drain(Round round) {
  net::Envelope env;
  for (;;) {
    if (transport_->receive(instance_, env, 0)) {
      accept(std::move(env), round);
      continue;
    }
    if (sync_->closed(instance_, round)) break;
    if (transport_->receive(instance_, env, poll_ms_)) {
      accept(std::move(env), round);
    }
  }
  // The closing signal (a peer's mark, or the timeout) can race data that
  // is already queued behind it; FIFO links guarantee everything a mark
  // covers is queued by the time the mark is visible, so one final
  // non-blocking sweep collects it.
  while (transport_->receive(instance_, env, 0)) {
    accept(std::move(env), round);
  }
}

void EventExecutor::run(Round total_rounds) {
  Control ctrl(*this);
  adversary_.setup(ctrl);

  for (Round r = 1; r <= total_rounds; ++r) {
    current_round_ = r;
    adversary_.pre_round(r, ctrl);
    // New rushing view for this round (pre_round may still inspect the old
    // one, matching the lockstep visibility window).
    posted_.clear();

    // Early arrivals: peers ahead of us already sent round-r traffic.
    if (auto it = future_.find(r); it != future_.end()) {
      for (Message& m : it->second) inboxes_[m.to].push_back(std::move(m));
      future_.erase(it);
    }

    for (ProcessId pid : local_) {
      if (corrupted_[pid]) continue;
      send_outbox_.clear();
      processes_[pid]->on_send(r, send_outbox_);
      post(pid, r, send_outbox_, /*correct=*/true);
    }

    // Byzantine traffic, injected with rushing knowledge of the round's
    // local correct messages (over loopback: all of them).
    adversary_.act(r, ctrl);

    // Everything this endpoint will say in round r has been sent.
    transport_->mark(instance_, r);

    sync_->round_opened(instance_, r);
    drain(r);

    for (ProcessId pid : local_) {
      if (corrupted_[pid]) continue;
      processes_[pid]->on_receive(r, inboxes_[pid]);
    }
    for (auto& box : inboxes_) box.clear();
  }
}

bool EventExecutor::is_corrupted(ProcessId pid) const {
  return pid < corrupted_.size() && corrupted_[pid];
}

std::uint32_t EventExecutor::corrupted_count() const {
  return corrupted_count_;
}

std::vector<ProcessId> EventExecutor::corrupted() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < corrupted_.size(); ++p) {
    if (corrupted_[p]) out.push_back(p);
  }
  return out;
}

}  // namespace mewc
