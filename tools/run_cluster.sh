#!/usr/bin/env bash
# Launches a local n-process mewc_node cluster (plus, optionally, a
# mewc_loadgen run against it) on localhost.
#
#   tools/run_cluster.sh [-b BUILD_DIR] [-n N] [-t T] [-p BASE_PORT]
#                        [-s SLOTS] [-c CHECKPOINT_EVERY] [-o OPS] [-r RATE]
#                        [-d OUT_DIR]
#
# Node j listens on BASE_PORT+j (consensus) and BASE_PORT+N+j (clients).
# Per-node logs, the loadgen log, and the latency JSON land in OUT_DIR.
# Exit status is non-zero if any node fails, the loadgen fails, or the
# nodes' final kv/ledger digests disagree — the same audit
# tests/node/node_smoke.sh gates CI on.
set -u

build_dir=build
n=4
t=1
base_port=$((19000 + RANDOM % 20000))
slots=64
checkpoint_every=8
ops=48
rate=200
out_dir=""

while getopts "b:n:t:p:s:c:o:r:d:h" opt; do
  case "$opt" in
    b) build_dir=$OPTARG ;;
    n) n=$OPTARG ;;
    t) t=$OPTARG ;;
    p) base_port=$OPTARG ;;
    s) slots=$OPTARG ;;
    c) checkpoint_every=$OPTARG ;;
    o) ops=$OPTARG ;;
    r) rate=$OPTARG ;;
    d) out_dir=$OPTARG ;;
    h|*)
      sed -n '2,13p' "$0" | sed 's/^# \{0,1\}//'
      exit 2
      ;;
  esac
done

node_bin=$build_dir/tools/mewc_node
loadgen_bin=$build_dir/tools/mewc_loadgen
if [[ ! -x $node_bin || ! -x $loadgen_bin ]]; then
  echo "error: $node_bin / $loadgen_bin not built (pass -b BUILD_DIR)" >&2
  exit 1
fi
if [[ -z $out_dir ]]; then
  out_dir=$(mktemp -d /tmp/mewc_cluster.XXXXXX)
fi
mkdir -p "$out_dir"
echo "cluster: n=$n t=$t base_port=$base_port slots=$slots -> $out_dir"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null
  done
}
trap cleanup EXIT

for ((i = 0; i < n; ++i)); do
  "$node_bin" --id "$i" --n "$n" --t "$t" --base-port "$base_port" \
    --slots "$slots" --checkpoint-every "$checkpoint_every" \
    > "$out_dir/node$i.log" 2>&1 &
  pids+=($!)
done

targets=""
for ((i = 0; i < n; ++i)); do
  targets+="${targets:+,}127.0.0.1:$((base_port + n + i))"
done

loadgen_rc=0
if ((ops > 0)); then
  "$loadgen_bin" --targets "$targets" --ops "$ops" --rate "$rate" \
    --json "$out_dir/latency.json" > "$out_dir/loadgen.log" 2>&1 \
    || loadgen_rc=$?
fi

node_rc=0
for pid in "${pids[@]}"; do
  wait "$pid" || node_rc=$?
done
pids=()

# Cross-node convergence audit: every node must print the same kv digest
# and the same ledger digest.
kv_digests=$(grep -h "kv digest:" "$out_dir"/node*.log | awk '{print $NF}' | sort -u)
ledger_digests=$(grep -h "ledger digest:" "$out_dir"/node*.log | awk '{print $NF}' | sort -u)
audit_rc=0
if [[ $(wc -l <<< "$kv_digests") -ne 1 || $(wc -l <<< "$ledger_digests") -ne 1 \
      || -z $kv_digests || -z $ledger_digests ]]; then
  echo "DIVERGED: kv=[$kv_digests] ledger=[$ledger_digests]" >&2
  audit_rc=1
fi

cat "$out_dir/loadgen.log" 2>/dev/null
grep -h "slots=\|kv digest:" "$out_dir"/node*.log
if ((node_rc != 0)); then echo "FAIL: a node exited non-zero" >&2; fi
if ((loadgen_rc != 0)); then echo "FAIL: loadgen exited $loadgen_rc" >&2; fi
if ((audit_rc == 0 && node_rc == 0 && loadgen_rc == 0)); then
  echo "cluster converged (kv $kv_digests)"
fi
exit $((audit_rc | node_rc | loadgen_rc))
