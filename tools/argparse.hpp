// Strict numeric argv parsing for the CLI tools.
//
// std::atoi / bare strtoull are the bug class this replaces: `--f -1`
// wrapped to 4294967295 and `--n foo` silently parsed as 0. Every numeric
// flag goes through parse_u64/parse_u32 instead, which reject empty,
// non-numeric, negative, trailing-garbage, and out-of-range inputs with a
// one-line diagnostic naming the flag, then exit 2 (the tools' usage-error
// code). Base-10 and 0x-prefixed hex are accepted, matching what the
// seed/value flags always took. The mewc_lint rule R-argparse keeps raw
// atoi/strtoul out of tools/ so the bug class cannot return.
#pragma once

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace mewc::tools {

[[noreturn]] inline void invalid_value(const char* flag, const char* text,
                                       const char* why) {
  std::fprintf(stderr, "invalid value for %s: '%s' (%s)\n", flag,
               text == nullptr ? "" : text, why);
  std::exit(2);
}

/// Parses an unsigned integer in [0, max_value]; exits 2 with a diagnostic
/// on anything else. Accepts decimal and 0x-prefixed hex.
inline std::uint64_t parse_u64(
    const char* flag, const char* text,
    std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max()) {
  if (text == nullptr || *text == '\0') {
    invalid_value(flag, text, "expected an unsigned integer");
  }
  if (*text == '-') {
    invalid_value(flag, text, "negative values are not allowed");
  }
  // Anything strtoull would skip or sign-extend is rejected up front; only
  // a digit may open the number ("0x.." opens with a digit too).
  if (std::isdigit(static_cast<unsigned char>(*text)) == 0) {
    invalid_value(flag, text, "expected an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    invalid_value(flag, text, "expected an unsigned integer");
  }
  if (errno == ERANGE || v > max_value) {
    char why[64];
    std::snprintf(why, sizeof(why), "must be at most %" PRIu64, max_value);
    invalid_value(flag, text, why);
  }
  return static_cast<std::uint64_t>(v);
}

/// parse_u64 restricted to 32 bits (n, t, f, worker counts, ...).
inline std::uint32_t parse_u32(
    const char* flag, const char* text,
    std::uint32_t max_value = std::numeric_limits<std::uint32_t>::max()) {
  return static_cast<std::uint32_t>(parse_u64(flag, text, max_value));
}

}  // namespace mewc::tools
