// mewc_lint — repo-specific static analysis driver.
//
// Walks the given files/directories (C++ sources only), runs every lint
// rule (see src/lint/lint.hpp for the rule table), and reports findings as
// file:line diagnostics, JSON, or SARIF. A finding is "active" unless an
// `mewc-lint: allow(<rule>)` comment covers its line or the baseline file
// grandfathers it; any active finding makes the exit code nonzero, which
// is what CI gates on.
//
// --sem adds the semantic pass (src/lint/sem/): R-taint Byzantine-input
// tracking, R-budget word-accounting completeness, and R-covdrift
// paper-line drift (give it PAPER.md via --paper for the algorithm
// cross-check). --audit-allows additionally fails on stale allow()
// comments — suppressions whose rule no longer fires on the covered line.
//
// Usage:
//   mewc_lint [--baseline FILE] [--write-baseline] [--sem] [--paper FILE]
//             [--sarif FILE] [--audit-allows] [--json] [-v] PATH...
//   mewc_lint --list-rules
//
// Exit codes: 0 clean, 1 active findings / stale allows, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/json.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "lint/sem/sem.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mewc;

struct Options {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string paper_path;
  std::string sarif_path;
  bool sem = false;
  bool audit_allows = false;
  bool write_baseline = false;
  bool json = false;
  bool list_rules = false;
  bool verbose = false;  // also print suppressed/baselined findings
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(stderr,
               "usage: %s [--baseline FILE] [--write-baseline] [--sem] "
               "[--paper FILE] [--sarif FILE] [--audit-allows] [--json] [-v] "
               "PATH...\n"
               "       %s --list-rules\n",
               self, self);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--baseline")) {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      o.baseline_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--paper")) {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      o.paper_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--sarif")) {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      o.sarif_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--sem")) {
      o.sem = true;
    } else if (!std::strcmp(argv[i], "--audit-allows")) {
      o.audit_allows = true;
    } else if (!std::strcmp(argv[i], "--write-baseline")) {
      o.write_baseline = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      o.json = true;
    } else if (!std::strcmp(argv[i], "--list-rules")) {
      o.list_rules = true;
    } else if (!std::strcmp(argv[i], "-v") ||
               !std::strcmp(argv[i], "--verbose")) {
      o.verbose = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    } else {
      o.paths.emplace_back(argv[i]);
    }
  }
  if (!o.list_rules && o.paths.empty()) usage_and_exit(argv[0]);
  return o;
}

[[nodiscard]] bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool read_whole_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Expands files and directories into a sorted source list — sorted so the
/// diagnostic order (and therefore the baseline and CI output) never
/// depends on directory iteration order.
bool collect_sources(const std::vector<std::string>& paths,
                     std::vector<lint::SourceFile>* out) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot walk %s: %s\n", p.c_str(),
                     ec.message().c_str());
        return false;
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    lint::SourceFile src;
    src.path = f;
    if (!read_whole_file(f, &src.content)) {
      std::fprintf(stderr, "cannot read %s\n", f.c_str());
      return false;
    }
    out->push_back(std::move(src));
  }
  return true;
}

int run_list_rules() {
  for (const lint::RuleInfo& r : lint::rules()) {
    std::printf("%-14s %s\n%-14s scope: %s\n", std::string(r.id).c_str(),
                std::string(r.what).c_str(), "", std::string(r.scope).c_str());
  }
  return 0;
}

check::json::Value to_json(const std::vector<lint::Diagnostic>& diags,
                           std::size_t files, std::size_t active,
                           const lint::sem::SemStats* sem_stats) {
  check::json::Object root;
  root["files_scanned"] = check::json::Value(files);
  root["findings_total"] = check::json::Value(diags.size());
  root["findings_active"] = check::json::Value(active);
  check::json::Array out;
  for (const lint::Diagnostic& d : diags) {
    check::json::Object o;
    o["rule"] = check::json::Value(d.rule);
    o["file"] = check::json::Value(d.file);
    o["line"] = check::json::Value(d.line);
    o["message"] = check::json::Value(d.message);
    o["suppressed"] = check::json::Value(d.suppressed);
    o["baselined"] = check::json::Value(d.baselined);
    out.push_back(check::json::Value(std::move(o)));
  }
  root["findings"] = check::json::Value(std::move(out));
  if (sem_stats != nullptr) {
    check::json::Object s;
    s["functions"] = check::json::Value(sem_stats->functions);
    s["cfg_nodes"] = check::json::Value(sem_stats->cfg_nodes);
    s["cfg_bailouts"] = check::json::Value(sem_stats->cfg_bailouts);
    s["taint_sources"] = check::json::Value(sem_stats->taint_sources);
    s["taint_facts"] = check::json::Value(sem_stats->taint_facts);
    s["outbox_fills"] = check::json::Value(sem_stats->outbox_fills);
    s["cov_sites_declared"] =
        check::json::Value(sem_stats->cov_sites_declared);
    s["cov_sites_used"] = check::json::Value(sem_stats->cov_sites_used);
    s["wall_ms"] = check::json::Value(sem_stats->wall_ms);
    root["sem"] = check::json::Value(std::move(s));
  }
  return check::json::Value(std::move(root));
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.list_rules) return run_list_rules();

  std::vector<lint::SourceFile> corpus;
  if (!collect_sources(o.paths, &corpus)) return 2;

  lint::Baseline baseline;
  if (!o.baseline_path.empty() && !o.write_baseline) {
    std::string text;
    if (!read_whole_file(o.baseline_path, &text)) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   o.baseline_path.c_str());
      return 2;
    }
    baseline = lint::Baseline::parse(text);
  }

  std::vector<lint::Diagnostic> diags = lint::run(corpus, &baseline);

  lint::sem::SemStats sem_stats;
  if (o.sem) {
    lint::sem::SemOptions sem_opts;
    if (!o.paper_path.empty() &&
        !read_whole_file(o.paper_path, &sem_opts.paper_text)) {
      std::fprintf(stderr, "cannot read paper %s\n", o.paper_path.c_str());
      return 2;
    }
    std::vector<lint::Diagnostic> sem_diags =
        lint::sem::run_sem(corpus, sem_opts, &sem_stats, &baseline);
    diags.insert(diags.end(), std::make_move_iterator(sem_diags.begin()),
                 std::make_move_iterator(sem_diags.end()));
    std::sort(diags.begin(), diags.end(),
              [](const lint::Diagnostic& a, const lint::Diagnostic& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
  }

  if (o.write_baseline) {
    if (o.baseline_path.empty()) {
      std::fprintf(stderr, "--write-baseline needs --baseline FILE\n");
      return 2;
    }
    std::ofstream out(o.baseline_path, std::ios::binary | std::ios::trunc);
    out << lint::Baseline::serialize(diags);
    if (!out) {
      std::fprintf(stderr, "cannot write baseline %s\n",
                   o.baseline_path.c_str());
      return 2;
    }
    std::printf("baseline written to %s\n", o.baseline_path.c_str());
    return 0;
  }

  if (!o.sarif_path.empty()) {
    std::ofstream out(o.sarif_path, std::ios::binary | std::ios::trunc);
    out << lint::to_sarif(diags);
    if (!out) {
      std::fprintf(stderr, "cannot write sarif %s\n", o.sarif_path.c_str());
      return 2;
    }
  }

  std::size_t active = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const lint::Diagnostic& d : diags) {
    if (d.suppressed) {
      ++suppressed;
    } else if (d.baselined) {
      ++baselined;
    } else {
      ++active;
    }
  }

  std::vector<lint::StaleAllow> stale;
  if (o.audit_allows) stale = lint::audit_allows(corpus, diags);

  if (o.json) {
    std::printf("%s\n", to_json(diags, corpus.size(), active,
                                o.sem ? &sem_stats : nullptr)
                            .dump()
                            .c_str());
  } else {
    for (const lint::Diagnostic& d : diags) {
      if (d.active()) {
        std::printf("%s:%u: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
      } else if (o.verbose) {
        std::printf("%s:%u: [%s] (%s) %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.suppressed ? "allowed" : "baselined",
                    d.message.c_str());
      }
    }
    for (const lint::StaleAllow& s : stale) {
      std::printf("%s:%u: [stale-allow] allow(%s) %s\n", s.file.c_str(),
                  s.line, s.rule.c_str(), s.why.c_str());
    }
    std::printf(
        "mewc_lint: %zu file%s, %zu active finding%s (%zu allowed, %zu "
        "baselined)\n",
        corpus.size(), corpus.size() == 1 ? "" : "s", active,
        active == 1 ? "" : "s", suppressed, baselined);
    if (o.audit_allows) {
      std::printf("mewc_lint: %zu stale allow comment%s\n", stale.size(),
                  stale.size() == 1 ? "" : "s");
    }
    if (o.sem) {
      std::printf(
          "mewc_lint --sem: %zu functions, %zu cfg nodes (%zu bailouts), "
          "%zu taint sources, %zu taint facts, %zu outbox fills, %zu cov "
          "sites (%zu used) in %.1f ms\n",
          sem_stats.functions, sem_stats.cfg_nodes, sem_stats.cfg_bailouts,
          sem_stats.taint_sources, sem_stats.taint_facts,
          sem_stats.outbox_fills, sem_stats.cov_sites_declared,
          sem_stats.cov_sites_used, sem_stats.wall_ms);
    }
  }
  return active == 0 && stale.empty() ? 0 : 1;
}
