// mewc_lint — repo-specific static analysis driver.
//
// Walks the given files/directories (C++ sources only), runs every lint
// rule (see src/lint/lint.hpp for the rule table), and reports findings as
// file:line diagnostics or JSON. A finding is "active" unless an
// `mewc-lint: allow(<rule>)` comment covers its line or the baseline file
// grandfathers it; any active finding makes the exit code nonzero, which
// is what CI gates on.
//
// Usage:
//   mewc_lint [--baseline FILE] [--write-baseline] [--json] [-v] PATH...
//   mewc_lint --list-rules
//
// Exit codes: 0 clean, 1 active findings, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/json.hpp"
#include "lint/lint.hpp"

namespace {

namespace fs = std::filesystem;
using namespace mewc;

struct Options {
  std::vector<std::string> paths;
  std::string baseline_path;
  bool write_baseline = false;
  bool json = false;
  bool list_rules = false;
  bool verbose = false;  // also print suppressed/baselined findings
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(stderr,
               "usage: %s [--baseline FILE] [--write-baseline] [--json] [-v] "
               "PATH...\n"
               "       %s --list-rules\n",
               self, self);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--baseline")) {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      o.baseline_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--write-baseline")) {
      o.write_baseline = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      o.json = true;
    } else if (!std::strcmp(argv[i], "--list-rules")) {
      o.list_rules = true;
    } else if (!std::strcmp(argv[i], "-v") ||
               !std::strcmp(argv[i], "--verbose")) {
      o.verbose = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    } else {
      o.paths.emplace_back(argv[i]);
    }
  }
  if (!o.list_rules && o.paths.empty()) usage_and_exit(argv[0]);
  return o;
}

[[nodiscard]] bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool read_whole_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Expands files and directories into a sorted source list — sorted so the
/// diagnostic order (and therefore the baseline and CI output) never
/// depends on directory iteration order.
bool collect_sources(const std::vector<std::string>& paths,
                     std::vector<lint::SourceFile>* out) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot walk %s: %s\n", p.c_str(),
                     ec.message().c_str());
        return false;
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    lint::SourceFile src;
    src.path = f;
    if (!read_whole_file(f, &src.content)) {
      std::fprintf(stderr, "cannot read %s\n", f.c_str());
      return false;
    }
    out->push_back(std::move(src));
  }
  return true;
}

int run_list_rules() {
  for (const lint::RuleInfo& r : lint::rules()) {
    std::printf("%-14s %s\n%-14s scope: %s\n", std::string(r.id).c_str(),
                std::string(r.what).c_str(), "", std::string(r.scope).c_str());
  }
  return 0;
}

check::json::Value to_json(const std::vector<lint::Diagnostic>& diags,
                           std::size_t files, std::size_t active) {
  check::json::Object root;
  root["files_scanned"] = check::json::Value(files);
  root["findings_total"] = check::json::Value(diags.size());
  root["findings_active"] = check::json::Value(active);
  check::json::Array out;
  for (const lint::Diagnostic& d : diags) {
    check::json::Object o;
    o["rule"] = check::json::Value(d.rule);
    o["file"] = check::json::Value(d.file);
    o["line"] = check::json::Value(d.line);
    o["message"] = check::json::Value(d.message);
    o["suppressed"] = check::json::Value(d.suppressed);
    o["baselined"] = check::json::Value(d.baselined);
    out.push_back(check::json::Value(std::move(o)));
  }
  root["findings"] = check::json::Value(std::move(out));
  return check::json::Value(std::move(root));
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.list_rules) return run_list_rules();

  std::vector<lint::SourceFile> corpus;
  if (!collect_sources(o.paths, &corpus)) return 2;

  lint::Baseline baseline;
  if (!o.baseline_path.empty() && !o.write_baseline) {
    std::string text;
    if (!read_whole_file(o.baseline_path, &text)) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   o.baseline_path.c_str());
      return 2;
    }
    baseline = lint::Baseline::parse(text);
  }

  const std::vector<lint::Diagnostic> diags = lint::run(corpus, &baseline);

  if (o.write_baseline) {
    if (o.baseline_path.empty()) {
      std::fprintf(stderr, "--write-baseline needs --baseline FILE\n");
      return 2;
    }
    std::ofstream out(o.baseline_path, std::ios::binary | std::ios::trunc);
    out << lint::Baseline::serialize(diags);
    if (!out) {
      std::fprintf(stderr, "cannot write baseline %s\n",
                   o.baseline_path.c_str());
      return 2;
    }
    std::printf("baseline written to %s\n", o.baseline_path.c_str());
    return 0;
  }

  std::size_t active = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const lint::Diagnostic& d : diags) {
    if (d.suppressed) {
      ++suppressed;
    } else if (d.baselined) {
      ++baselined;
    } else {
      ++active;
    }
  }

  if (o.json) {
    std::printf("%s\n", to_json(diags, corpus.size(), active).dump().c_str());
  } else {
    for (const lint::Diagnostic& d : diags) {
      if (d.active()) {
        std::printf("%s:%u: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
      } else if (o.verbose) {
        std::printf("%s:%u: [%s] (%s) %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.suppressed ? "allowed" : "baselined",
                    d.message.c_str());
      }
    }
    std::printf(
        "mewc_lint: %zu file%s, %zu active finding%s (%zu allowed, %zu "
        "baselined)\n",
        corpus.size(), corpus.size() == 1 ? "" : "s", active,
        active == 1 ? "" : "s", suppressed, baselined);
  }
  return active == 0 ? 0 : 1;
}
