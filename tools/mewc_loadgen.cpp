// mewc_loadgen — open-loop client load generator for a mewc_node cluster.
//
// Sends kv commands (node/client.hpp wire format: framed op/ack) to the
// clusters' client ports on a fixed schedule: op i is sent at
// start + i/rate regardless of ack progress, so the measured latency
// includes queueing when the cluster cannot keep up (the open-loop
// discipline that avoids coordinated omission). Targets are used
// round-robin, which matches the cluster's rotating proposer: node j only
// proposes (and thus acks) ops sent to node j.
//
// Reports wall-clock throughput and p50/p99/p999 ack latency on stdout,
// and optionally as JSON (--json) for EXPERIMENTS.md / CI artifacts. Exits
// 0 only when every op was acked within the drain window.
//
// Usage:
//   mewc_loadgen --targets host:port[,host:port...] [--ops N] [--rate R]
//                [--key-space K] [--seed SEED] [--drain-ms MS] [--json F]
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "argparse.hpp"
#include "smr/kv_store.hpp"
#include "wire/frame.hpp"

namespace {

using namespace mewc;
using tools::parse_u32;
using tools::parse_u64;

constexpr std::uint8_t kFrameOp = 0x10;
constexpr std::uint8_t kFrameAck = 0x11;

struct Options {
  std::vector<std::string> targets;  // "host:port"
  std::uint64_t ops = 64;
  std::uint64_t rate = 100;  // ops per second, across all targets
  std::uint32_t key_space = 16;
  std::uint64_t seed = 0x10ad;
  std::uint64_t drain_ms = 30000;
  std::string json_path;
};

// The tool name is literal (not argv[0]) so the --help output is stable
// under any invocation path — tests/tools/mewc_loadgen_help.txt pins it.
void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: mewc_loadgen --targets host:port[,host:port...] [--ops N] "
      "[--rate R]\n"
      "          [--key-space K] [--seed SEED] [--drain-ms MS] [--json F]\n"
      "\n"
      "Open-loop load generator for a mewc_node cluster: op i is sent at\n"
      "start + i/rate to the targets round-robin, acks are collected on\n"
      "reader threads, and p50/p99/p999 ack latency plus throughput are\n"
      "reported. Exits 0 only when every op was acked.\n");
}

[[noreturn]] void usage_and_exit() {
  print_usage(stderr);
  std::exit(2);
}

std::vector<std::string> split_targets(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage_and_exit();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--help")) {
      print_usage(stdout);
      std::exit(0);
    } else if (!std::strcmp(argv[i], "--targets")) {
      o.targets = split_targets(need());
    } else if (!std::strcmp(argv[i], "--ops")) {
      o.ops = parse_u64("--ops", need());
    } else if (!std::strcmp(argv[i], "--rate")) {
      o.rate = parse_u64("--rate", need());
    } else if (!std::strcmp(argv[i], "--key-space")) {
      o.key_space = parse_u32("--key-space", need(), 1u << 20);
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = parse_u64("--seed", need());
    } else if (!std::strcmp(argv[i], "--drain-ms")) {
      o.drain_ms = parse_u64("--drain-ms", need());
    } else if (!std::strcmp(argv[i], "--json")) {
      o.json_path = need();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit();
    }
  }
  if (o.targets.empty()) {
    std::fprintf(stderr, "--targets is required\n");
    usage_and_exit();
  }
  if (o.rate == 0 || o.key_space == 0) {
    std::fprintf(stderr, "--rate and --key-space must be positive\n");
    usage_and_exit();
  }
  return o;
}

int dial(const std::string& target, std::string* error) {
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    *error = "target '" + target + "' is not host:port";
    return -1;
  }
  const std::string host = target.substr(0, colon);
  const std::string port = target.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    *error = "cannot resolve " + target;
    return -1;
  }
  // Nodes are usually launched in the same breath as the load generator
  // (tools/run_cluster.sh), so retry refused connections briefly instead
  // of failing on the startup race.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const int fd = socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd >= 0 && connect(fd, res->ai_addr, res->ai_addrlen) == 0) {
      freeaddrinfo(res);
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (fd >= 0) close(fd);
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  *error = "cannot connect to " + target + ": " + strerror(errno);
  freeaddrinfo(res);
  return -1;
}

/// xorshift64* — deterministic key/value stream from --seed.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dull;
}

struct AckState {
  std::mutex mu;
  /// Send timestamp per op id; reset to time_point{} once acked.
  std::vector<std::chrono::steady_clock::time_point> sent_at;
  std::vector<std::int64_t> latency_us;  // one entry per acked op
  std::uint64_t acked = 0;
  std::uint64_t acked_ok = 0;
  std::uint64_t acked_retry = 0;
  std::uint64_t decode_errors = 0;
};

void reader_loop(int fd, AckState* state, const std::atomic<bool>* stop) {
  std::vector<std::uint8_t> inbuf;
  std::uint8_t chunk[16384];
  while (!stop->load(std::memory_order_relaxed)) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // blocking socket: 0 = peer closed, <0 = error
    inbuf.insert(inbuf.end(), chunk, chunk + n);
    std::size_t offset = 0;
    for (;;) {
      const auto frame = wire::read_frame(inbuf, offset);
      if (!frame) break;
      wire::Reader r(frame->body);
      const std::uint8_t kind = r.u8();
      const std::uint64_t op_id = r.u64();
      r.u64();  // slot
      r.u64();  // kv digest (audited via the nodes' exit lines)
      const std::uint8_t status = r.u8();
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(state->mu);
      if (kind != kFrameAck || !r.done() || op_id >= state->sent_at.size() ||
          state->sent_at[op_id] == std::chrono::steady_clock::time_point{}) {
        ++state->decode_errors;
      } else {
        state->latency_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - state->sent_at[op_id])
                .count());
        state->sent_at[op_id] = {};
        ++state->acked;
        ++(status == 0 ? state->acked_ok : state->acked_retry);
      }
      offset += frame->frame_size;
    }
    if (offset > 0) {
      inbuf.erase(inbuf.begin(),
                  inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
    }
  }
}

std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[rank];
}

int run(const Options& o) {
  std::vector<int> fds;
  std::string error;
  for (const auto& target : o.targets) {
    const int fd = dial(target, &error);
    if (fd < 0) {
      std::fprintf(stderr, "loadgen: %s\n", error.c_str());
      for (const int open_fd : fds) close(open_fd);
      return 1;
    }
    fds.push_back(fd);
  }

  AckState state;
  state.sent_at.resize(o.ops);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (const int fd : fds) {
    readers.emplace_back([fd, &state, &stop] { reader_loop(fd, &state, &stop); });
  }

  // Open loop: op i's send time is fixed up front. Falling behind the
  // schedule (slow write) is not compensated — the deadline discipline is
  // the point.
  std::uint64_t rng = o.seed;
  std::uint64_t sent = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < o.ops; ++i) {
    const auto deadline =
        start + std::chrono::microseconds(i * 1'000'000 / o.rate);
    std::this_thread::sleep_until(deadline);
    const smr::Command cmd = smr::Command::put(
        static_cast<std::uint32_t>(next_rand(rng) % o.key_space),
        next_rand(rng) & ((1ull << 40) - 1));
    wire::Writer w;
    w.u8(kFrameOp);
    w.u64(i);
    w.u64(cmd.pack().raw);
    const std::vector<std::uint8_t> body = w.take();
    std::vector<std::uint8_t> framed;
    wire::append_frame(framed, body);
    {
      std::lock_guard<std::mutex> lock(state.mu);
      state.sent_at[i] = std::chrono::steady_clock::now();
    }
    const int fd = fds[i % fds.size()];
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = write(fd, framed.data() + off, framed.size() - off);
      if (n <= 0) {
        std::fprintf(stderr, "loadgen: write to %s failed: %s\n",
                     o.targets[i % fds.size()].c_str(), strerror(errno));
        stop.store(true, std::memory_order_relaxed);
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (stop.load(std::memory_order_relaxed)) break;
    ++sent;
  }
  const auto send_done = std::chrono::steady_clock::now();

  // Drain: wait (bounded) for the cluster to work through the backlog.
  const auto drain_deadline =
      send_done + std::chrono::milliseconds(o.drain_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.acked >= sent) break;
    }
    if (std::chrono::steady_clock::now() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (auto& t : readers) t.join();
  for (const int fd : fds) close(fd);

  const auto end = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(end - start).count();
  std::sort(state.latency_us.begin(), state.latency_us.end());
  const std::int64_t p50 = percentile(state.latency_us, 0.50);
  const std::int64_t p99 = percentile(state.latency_us, 0.99);
  const std::int64_t p999 = percentile(state.latency_us, 0.999);
  const double throughput =
      elapsed_s > 0 ? static_cast<double>(state.acked) / elapsed_s : 0.0;

  std::printf("loadgen: sent=%llu acked=%llu ok=%llu retry=%llu "
              "unacked=%llu decode_errors=%llu\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(state.acked),
              static_cast<unsigned long long>(state.acked_ok),
              static_cast<unsigned long long>(state.acked_retry),
              static_cast<unsigned long long>(sent - state.acked),
              static_cast<unsigned long long>(state.decode_errors));
  std::printf("loadgen: throughput=%.1f ops/s over %.2f s\n", throughput,
              elapsed_s);
  std::printf("loadgen: latency p50=%lld us p99=%lld us p999=%lld us\n",
              static_cast<long long>(p50), static_cast<long long>(p99),
              static_cast<long long>(p999));

  if (!o.json_path.empty()) {
    FILE* f = std::fopen(o.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", o.json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"targets\": %zu,\n"
                 "  \"ops\": %llu,\n"
                 "  \"rate\": %llu,\n"
                 "  \"sent\": %llu,\n"
                 "  \"acked\": %llu,\n"
                 "  \"acked_ok\": %llu,\n"
                 "  \"acked_retry\": %llu,\n"
                 "  \"elapsed_s\": %.4f,\n"
                 "  \"throughput_ops_s\": %.2f,\n"
                 "  \"latency_us\": {\"p50\": %lld, \"p99\": %lld, "
                 "\"p999\": %lld}\n"
                 "}\n",
                 o.targets.size(), static_cast<unsigned long long>(o.ops),
                 static_cast<unsigned long long>(o.rate),
                 static_cast<unsigned long long>(sent),
                 static_cast<unsigned long long>(state.acked),
                 static_cast<unsigned long long>(state.acked_ok),
                 static_cast<unsigned long long>(state.acked_retry),
                 elapsed_s, throughput, static_cast<long long>(p50),
                 static_cast<long long>(p99), static_cast<long long>(p999));
    std::fclose(f);
  }
  return state.acked >= sent && sent == o.ops ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(parse(argc, argv)); }
