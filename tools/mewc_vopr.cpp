// mewc_vopr — deterministic simulation-testing driver (VOPR-style).
//
// Campaign mode: enumerate (protocol, n, t, f, adversary, seed) cells from
// a declarative JSON grid, run each through the harness across worker
// threads, evaluate every invariant checker (agreement, validity,
// termination, the Table 1 word budget, certificate well-formedness), and
// emit a JSON report with per-group word-complexity percentiles. On a
// violation, the failing cell is shrunk to a minimal reproduction and
// written to a replay file.
//
// Replay mode: re-run a replay file bit-for-bit, print the per-checker
// verdicts against the recorded expectation, and render the space-time
// diagram of the failing run.
//
// Usage:
//   mewc_vopr --grid FILE [--jobs N] [--report FILE] [--cells]
//             [--no-shrink] [--replay-out FILE] [--word-budget-c C]
//             [--max-shrink-runs N]
//   mewc_vopr --replay FILE [--no-trace]
//   mewc_vopr --list
//
// Exit codes: 0 all invariants hold, 1 violations found, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <string>

#include "check/adversary_registry.hpp"
#include "check/campaign.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "sim/trace.hpp"

namespace {

using namespace mewc;

struct Options {
  std::string grid_path;
  std::string replay_path;
  std::string report_path;
  std::string replay_out = "vopr-replay.json";
  unsigned jobs = 0;
  bool list = false;
  bool cells = false;
  bool shrink = true;
  bool trace = true;
  std::optional<std::uint64_t> word_budget_c;
  std::uint32_t max_shrink_runs = 96;
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(
      stderr,
      "usage: %s --grid FILE [--jobs N] [--report FILE] [--cells]\n"
      "          [--no-shrink] [--replay-out FILE] [--word-budget-c C]\n"
      "          [--max-shrink-runs N]\n"
      "       %s --replay FILE [--no-trace]\n"
      "       %s --list\n"
      "protocols:   %s\n"
      "adversaries: %s\n",
      self, self, self, check::protocol_names_joined().c_str(),
      check::adversary_names_joined().c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--grid")) {
      o.grid_path = need();
    } else if (!std::strcmp(argv[i], "--replay")) {
      o.replay_path = need();
    } else if (!std::strcmp(argv[i], "--report")) {
      o.report_path = need();
    } else if (!std::strcmp(argv[i], "--replay-out")) {
      o.replay_out = need();
    } else if (!std::strcmp(argv[i], "--jobs")) {
      o.jobs = static_cast<unsigned>(std::strtoul(need(), nullptr, 0));
    } else if (!std::strcmp(argv[i], "--cells")) {
      o.cells = true;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      o.shrink = false;
    } else if (!std::strcmp(argv[i], "--no-trace")) {
      o.trace = false;
    } else if (!std::strcmp(argv[i], "--list")) {
      o.list = true;
    } else if (!std::strcmp(argv[i], "--word-budget-c")) {
      o.word_budget_c = std::strtoull(need(), nullptr, 0);
    } else if (!std::strcmp(argv[i], "--max-shrink-runs")) {
      o.max_shrink_runs =
          static_cast<std::uint32_t>(std::strtoul(need(), nullptr, 0));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    }
  }
  const int modes = (!o.grid_path.empty() ? 1 : 0) +
                    (!o.replay_path.empty() ? 1 : 0) + (o.list ? 1 : 0);
  if (modes != 1) usage_and_exit(argv[0]);
  return o;
}

void render_cell_trace(const check::CellSpec& cell) {
  check::RunOptions run_opts;
  run_opts.record_messages = true;
  const check::RunRecord record = check::run_cell(cell, run_opts);
  sim::SpaceTime diagram(cell.n);
  for (const auto& m : record.log.messages) {
    diagram.observe(m.from, m.round, m.kind, m.correct);
  }
  std::printf("\nspace-time diagram (%s):\n", cell.label().c_str());
  diagram.render(stdout, record.rounds);
}

void print_violations(const std::vector<check::Violation>& violations) {
  for (const auto& v : violations) {
    std::printf("  [%s] %s\n", v.checker.c_str(), v.detail.c_str());
  }
}

int run_campaign_mode(const Options& o) {
  std::string error;
  const auto grid_json = check::json::read_file(o.grid_path, &error);
  if (!grid_json) {
    std::fprintf(stderr, "cannot read grid %s: %s\n", o.grid_path.c_str(),
                 error.c_str());
    return 2;
  }
  check::GridSpec grid;
  if (!check::GridSpec::from_json(*grid_json, &grid, &error)) {
    std::fprintf(stderr, "bad grid %s: %s\n", o.grid_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (o.word_budget_c) grid.checkers.word_budget_c = *o.word_budget_c;

  const auto cells = grid.enumerate();
  std::printf("campaign: %zu cells from %s (C = %llu)\n", cells.size(),
              o.grid_path.c_str(),
              static_cast<unsigned long long>(grid.checkers.word_budget_c));

  const auto on_cell = [&](const check::CellResult& r) {
    if (o.cells || !r.passed()) {
      std::printf("%s  %s  words=%llu%s\n", r.passed() ? "pass" : "FAIL",
                  r.cell.label().c_str(),
                  static_cast<unsigned long long>(r.words_correct),
                  r.any_fallback ? " fallback" : "");
      if (!r.passed()) print_violations(r.violations);
    }
  };
  const auto report = check::run_campaign(grid, o.jobs, on_cell);

  std::printf("\n%llu/%llu cells passed\n",
              static_cast<unsigned long long>(report.cells_passed),
              static_cast<unsigned long long>(report.cells_total));

  std::uint64_t pool_reused = 0;
  std::uint64_t pool_fresh = 0;
  for (const auto& r : report.results) {
    pool_reused += r.pool_reused;
    pool_fresh += r.pool_fresh;
  }
  if (pool_reused + pool_fresh > 0) {
    std::printf("payload pool: %llu reused / %llu fresh (%.1f%% reuse)\n",
                static_cast<unsigned long long>(pool_reused),
                static_cast<unsigned long long>(pool_fresh),
                100.0 * static_cast<double>(pool_reused) /
                    static_cast<double>(pool_reused + pool_fresh));
  }

  if (!o.report_path.empty()) {
    if (!check::json::write_file(o.report_path, report.to_json())) {
      std::fprintf(stderr, "cannot write report %s\n", o.report_path.c_str());
      return 2;
    }
    std::printf("report written to %s\n", o.report_path.c_str());
  }

  const check::CellResult* failure = report.first_failure();
  if (failure == nullptr) return 0;

  if (o.shrink) {
    std::printf("\nshrinking first failure: %s\n",
                failure->cell.label().c_str());
    check::ShrinkOptions shrink_opts;
    shrink_opts.max_runs = o.max_shrink_runs;
    const auto shrunk =
        check::shrink_failure(failure->cell, grid.checkers, shrink_opts);
    std::printf("minimal failing cell (%u runs, %u steps): %s\n",
                shrunk.runs, shrunk.steps, shrunk.minimal.label().c_str());

    check::Replay replay;
    replay.cell = shrunk.minimal;
    replay.checkers = grid.checkers;
    replay.expected = check::violations_of(shrunk.minimal, grid.checkers);
    print_violations(replay.expected);
    if (replay.save(o.replay_out)) {
      std::printf("replay written to %s (mewc_vopr --replay %s)\n",
                  o.replay_out.c_str(), o.replay_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write replay %s\n", o.replay_out.c_str());
    }
    if (o.trace) render_cell_trace(shrunk.minimal);
  }
  return 1;
}

int run_replay_mode(const Options& o) {
  std::string error;
  check::Replay replay;
  if (!check::Replay::load(o.replay_path, &replay, &error)) {
    std::fprintf(stderr, "cannot load replay %s: %s\n", o.replay_path.c_str(),
                 error.c_str());
    return 2;
  }

  std::printf("replaying %s\n", replay.cell.label().c_str());
  const auto violations = check::violations_of(replay.cell, replay.checkers);

  // Per-checker verdicts for every registered checker.
  for (const auto& checker : check::default_checkers()) {
    bool violated = false;
    for (const auto& v : violations) {
      violated = violated || v.checker == checker->name();
    }
    std::printf("  %-12s %s\n", checker->name(), violated ? "FAIL" : "ok");
  }
  print_violations(violations);

  // Bit-for-bit reproduction check: same checkers must fire as when the
  // replay was recorded.
  bool matches = violations.size() == replay.expected.size();
  for (std::size_t i = 0; matches && i < violations.size(); ++i) {
    matches = violations[i].checker == replay.expected[i].checker &&
              violations[i].detail == replay.expected[i].detail;
  }
  std::printf("verdict matches recording: %s\n", matches ? "yes" : "NO");

  if (o.trace) render_cell_trace(replay.cell);
  return violations.empty() && matches ? 0 : 1;
}

int run_list_mode() {
  std::printf("protocols:   %s\n", check::protocol_names_joined(" ").c_str());
  std::printf("adversaries: %s\n", check::adversary_names_joined(" ").c_str());
  std::printf("checkers:   ");
  for (const auto& c : check::default_checkers()) {
    std::printf(" %s", c->name());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.list) return run_list_mode();
  if (!o.replay_path.empty()) return run_replay_mode(o);
  return run_campaign_mode(o);
}
