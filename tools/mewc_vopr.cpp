// mewc_vopr — deterministic simulation-testing driver (VOPR-style).
//
// Campaign mode: enumerate (protocol, n, t, f, adversary, seed) cells from
// a declarative JSON grid, run each through the harness across worker
// threads, evaluate every invariant checker (agreement, validity,
// termination, the Table 1 word budget, certificate well-formedness), and
// emit a JSON report with per-group word-complexity percentiles. On a
// violation, the failing cell is shrunk to a minimal reproduction and
// written to a replay file.
//
// Replay mode: re-run a replay file bit-for-bit, print the per-checker
// verdicts against the recorded expectation, and render the space-time
// diagram of the failing run.
//
// Fuzz mode: coverage-guided schedule fuzzing. Starting from a seed corpus
// (every protocol x registry adversary x f in {0,1,t}), mutate corpus cells
// (src/check/mutator.hpp) and keep any mutant whose run reaches a paper-line
// coverage site (src/check/coverage.hpp) no prior run reached. Mutants are
// derived sequentially from one seeded Rng and evaluated in fixed-size
// generations with results merged in index order, so the whole loop —
// corpus, coverage bitmap, report — is bit-for-bit deterministic regardless
// of --jobs. Corpus entries are minimized through the shrinker and written
// as replay files; a violation is shrunk exactly like a campaign failure.
//
// Crash mode: crash-injection campaign over the durable SMR engine. Each
// cell runs an uninterrupted reference, then a run that is killed mid-slot,
// has its last WAL write torn at a seeded byte offset, recovers, and
// continues — and must end digest-identical to the reference (ledger, kv
// state, word meters, checkpoint stream, WAL bytes). Failures shrink and
// replay exactly like protocol cells; --replay dispatches on the file tag.
//
// Usage:
//   mewc_vopr --grid FILE [--jobs N] [--report FILE] [--cells]
//             [--no-shrink] [--replay-out FILE] [--word-budget-c C]
//             [--max-shrink-runs N]
//   mewc_vopr --crash-grid FILE [--jobs N] [--report FILE] [--cells]
//             [--no-shrink] [--replay-out FILE] [--max-shrink-runs N]
//   mewc_vopr --fuzz --budget N [--seed S] [--jobs N] [--corpus DIR]
//             [--fuzz-report FILE] [--min-sites K] [--require-site NAME]...
//             [--expect-unreachable NAME]... [--no-shrink]
//             [--replay-out FILE] [--word-budget-c C]
//   mewc_vopr --replay FILE [--no-trace]
//   mewc_vopr --list
//
// Exit codes: 0 all invariants hold (and fuzz gates met), 1 violations or
// missed coverage gate, 2 usage/IO error.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>

#include "argparse.hpp"
#include "check/adversary_registry.hpp"
#include "check/campaign.hpp"
#include "check/coverage.hpp"
#include "check/crash.hpp"
#include "check/mutator.hpp"
#include "check/runner.hpp"
#include "check/shrink.hpp"
#include "sim/trace.hpp"

namespace {

using namespace mewc;

struct Options {
  std::string grid_path;
  std::string crash_grid_path;
  std::string replay_path;
  std::string report_path;
  std::string replay_out = "vopr-replay.json";
  unsigned jobs = 0;
  bool list = false;
  bool cells = false;
  bool shrink = true;
  bool trace = true;
  std::string backend;   // campaign mode: override the grid's backends axis
  std::string executor;  // campaign mode: override the grid's executors axis
  std::optional<std::uint64_t> word_budget_c;
  std::uint32_t max_shrink_runs = 96;
  // Fuzz mode.
  bool fuzz = false;
  std::uint64_t budget = 0;
  std::uint64_t fuzz_seed = 1;
  std::string corpus_dir;
  std::string fuzz_report_path;
  std::uint64_t min_sites = 0;
  std::vector<std::string> require_sites;
  std::vector<std::string> expect_unreachable;
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(
      stderr,
      "usage: %s --grid FILE [--jobs N] [--report FILE] [--cells]\n"
      "          [--no-shrink] [--replay-out FILE] [--word-budget-c C]\n"
      "          [--max-shrink-runs N] [--backend sim|shamir|real]\n"
      "          [--executor lockstep|event]\n"
      "       %s --crash-grid FILE [--jobs N] [--report FILE] [--cells]\n"
      "          [--no-shrink] [--replay-out FILE] [--max-shrink-runs N]\n"
      "       %s --fuzz --budget N [--seed S] [--jobs N] [--corpus DIR]\n"
      "          [--fuzz-report FILE] [--min-sites K] [--require-site NAME]\n"
      "          [--expect-unreachable NAME]\n"
      "       %s --replay FILE [--no-trace]\n"
      "       %s --list\n"
      "protocols:   %s\n"
      "adversaries: %s\n",
      self, self, self, self, self, check::protocol_names_joined().c_str(),
      check::adversary_names_joined().c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--grid")) {
      o.grid_path = need();
    } else if (!std::strcmp(argv[i], "--crash-grid")) {
      o.crash_grid_path = need();
    } else if (!std::strcmp(argv[i], "--replay")) {
      o.replay_path = need();
    } else if (!std::strcmp(argv[i], "--report")) {
      o.report_path = need();
    } else if (!std::strcmp(argv[i], "--replay-out")) {
      o.replay_out = need();
    } else if (!std::strcmp(argv[i], "--jobs")) {
      o.jobs = mewc::tools::parse_u32("--jobs", need());
    } else if (!std::strcmp(argv[i], "--cells")) {
      o.cells = true;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      o.shrink = false;
    } else if (!std::strcmp(argv[i], "--no-trace")) {
      o.trace = false;
    } else if (!std::strcmp(argv[i], "--list")) {
      o.list = true;
    } else if (!std::strcmp(argv[i], "--backend")) {
      o.backend = need();
    } else if (!std::strcmp(argv[i], "--executor")) {
      o.executor = need();
    } else if (!std::strcmp(argv[i], "--word-budget-c")) {
      o.word_budget_c = mewc::tools::parse_u64("--word-budget-c", need());
    } else if (!std::strcmp(argv[i], "--max-shrink-runs")) {
      o.max_shrink_runs = mewc::tools::parse_u32("--max-shrink-runs", need());
    } else if (!std::strcmp(argv[i], "--fuzz")) {
      o.fuzz = true;
    } else if (!std::strcmp(argv[i], "--budget")) {
      o.budget = mewc::tools::parse_u64("--budget", need());
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.fuzz_seed = mewc::tools::parse_u64("--seed", need());
    } else if (!std::strcmp(argv[i], "--corpus")) {
      o.corpus_dir = need();
    } else if (!std::strcmp(argv[i], "--fuzz-report")) {
      o.fuzz_report_path = need();
    } else if (!std::strcmp(argv[i], "--min-sites")) {
      o.min_sites = mewc::tools::parse_u64("--min-sites", need());
    } else if (!std::strcmp(argv[i], "--require-site")) {
      o.require_sites.emplace_back(need());
    } else if (!std::strcmp(argv[i], "--expect-unreachable")) {
      o.expect_unreachable.emplace_back(need());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    }
  }
  const int modes = (!o.grid_path.empty() ? 1 : 0) +
                    (!o.crash_grid_path.empty() ? 1 : 0) +
                    (!o.replay_path.empty() ? 1 : 0) + (o.list ? 1 : 0) +
                    (o.fuzz ? 1 : 0);
  if (modes != 1) usage_and_exit(argv[0]);
  if (o.fuzz && o.budget == 0) {
    std::fprintf(stderr, "--fuzz needs --budget N >= 1\n");
    usage_and_exit(argv[0]);
  }
  return o;
}

void render_cell_trace(const check::CellSpec& cell) {
  check::RunOptions run_opts;
  run_opts.record_messages = true;
  const check::RunRecord record = check::run_cell(cell, run_opts);
  sim::SpaceTime diagram(cell.n);
  for (const auto& m : record.log.messages) {
    diagram.observe(m.from, m.round, m.kind, m.correct);
  }
  std::printf("\nspace-time diagram (%s):\n", cell.label().c_str());
  diagram.render(stdout, record.rounds);
}

void print_violations(const std::vector<check::Violation>& violations) {
  for (const auto& v : violations) {
    std::printf("  [%s] %s\n", v.checker.c_str(), v.detail.c_str());
  }
}

int run_campaign_mode(const Options& o) {
  std::string error;
  const auto grid_json = check::json::read_file(o.grid_path, &error);
  if (!grid_json) {
    std::fprintf(stderr, "cannot read grid %s: %s\n", o.grid_path.c_str(),
                 error.c_str());
    return 2;
  }
  check::GridSpec grid;
  if (!check::GridSpec::from_json(*grid_json, &grid, &error)) {
    std::fprintf(stderr, "bad grid %s: %s\n", o.grid_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (o.word_budget_c) grid.checkers.word_budget_c = *o.word_budget_c;
  if (!o.backend.empty()) {
    const auto backend = parse_backend(o.backend);
    if (!backend) {
      std::fprintf(stderr, "unknown backend '%s' (expected sim|shamir|real)\n",
                   o.backend.c_str());
      return 2;
    }
    grid.backends = {*backend};
  }
  if (!o.executor.empty()) {
    const auto executor = parse_executor_kind(o.executor);
    if (!executor) {
      std::fprintf(stderr, "unknown executor '%s' (expected lockstep|event)\n",
                   o.executor.c_str());
      return 2;
    }
    grid.executors = {*executor};
  }

  const auto cells = grid.enumerate();
  std::printf("campaign: %zu cells from %s (C = %llu)\n", cells.size(),
              o.grid_path.c_str(),
              static_cast<unsigned long long>(grid.checkers.word_budget_c));

  const auto on_cell = [&](const check::CellResult& r) {
    if (o.cells || !r.passed()) {
      std::printf("%s  %s  words=%llu%s\n", r.passed() ? "pass" : "FAIL",
                  r.cell.label().c_str(),
                  static_cast<unsigned long long>(r.words_correct),
                  r.any_fallback ? " fallback" : "");
      if (!r.passed()) print_violations(r.violations);
    }
  };
  const auto report = check::run_campaign(grid, o.jobs, on_cell);

  std::printf("\n%llu/%llu cells passed\n",
              static_cast<unsigned long long>(report.cells_passed),
              static_cast<unsigned long long>(report.cells_total));

  std::uint64_t pool_reused = 0;
  std::uint64_t pool_fresh = 0;
  for (const auto& r : report.results) {
    pool_reused += r.pool_reused;
    pool_fresh += r.pool_fresh;
  }
  if (pool_reused + pool_fresh > 0) {
    std::printf("payload pool: %llu reused / %llu fresh (%.1f%% reuse)\n",
                static_cast<unsigned long long>(pool_reused),
                static_cast<unsigned long long>(pool_fresh),
                100.0 * static_cast<double>(pool_reused) /
                    static_cast<double>(pool_reused + pool_fresh));
  }

  if (!o.report_path.empty()) {
    if (!check::json::write_file(o.report_path, report.to_json())) {
      std::fprintf(stderr, "cannot write report %s\n", o.report_path.c_str());
      return 2;
    }
    std::printf("report written to %s\n", o.report_path.c_str());
  }

  const check::CellResult* failure = report.first_failure();
  if (failure == nullptr) return 0;

  if (o.shrink) {
    std::printf("\nshrinking first failure: %s\n",
                failure->cell.label().c_str());
    check::ShrinkOptions shrink_opts;
    shrink_opts.max_runs = o.max_shrink_runs;
    const auto shrunk =
        check::shrink_failure(failure->cell, grid.checkers, shrink_opts);
    std::printf("minimal failing cell (%u runs, %u steps): %s\n",
                shrunk.runs, shrunk.steps, shrunk.minimal.label().c_str());

    check::Replay replay;
    replay.cell = shrunk.minimal;
    replay.checkers = grid.checkers;
    replay.expected = check::violations_of(shrunk.minimal, grid.checkers);
    print_violations(replay.expected);
    if (replay.save(o.replay_out)) {
      std::printf("replay written to %s (mewc_vopr --replay %s)\n",
                  o.replay_out.c_str(), o.replay_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write replay %s\n", o.replay_out.c_str());
    }
    if (o.trace) render_cell_trace(shrunk.minimal);
  }
  return 1;
}

int run_crash_campaign_mode(const Options& o) {
  std::string error;
  const auto grid_json = check::json::read_file(o.crash_grid_path, &error);
  if (!grid_json) {
    std::fprintf(stderr, "cannot read crash grid %s: %s\n",
                 o.crash_grid_path.c_str(), error.c_str());
    return 2;
  }
  check::CrashGridSpec grid;
  if (!check::CrashGridSpec::from_json(*grid_json, &grid, &error)) {
    std::fprintf(stderr, "bad crash grid %s: %s\n", o.crash_grid_path.c_str(),
                 error.c_str());
    return 2;
  }

  std::printf("crash campaign: %zu cells from %s\n", grid.enumerate().size(),
              o.crash_grid_path.c_str());

  const auto on_cell = [&](const check::CrashCellResult& r) {
    if (o.cells || !r.passed()) {
      std::printf("%s  %s  replayed=%llu truncated=%llu%s%s\n",
                  r.passed() ? "pass" : "FAIL", r.cell.label().c_str(),
                  static_cast<unsigned long long>(r.records_replayed),
                  static_cast<unsigned long long>(r.wal_bytes_truncated),
                  r.used_snapshot ? " snapshot" : "",
                  r.checkpoint_completed ? " cp-completed" : "");
      if (!r.passed()) print_violations(r.violations);
    }
  };
  const auto report = check::run_crash_campaign(grid, o.jobs, on_cell);

  std::printf("\n%llu/%llu crash cells passed\n",
              static_cast<unsigned long long>(report.cells_passed),
              static_cast<unsigned long long>(report.cells_total));

  if (!o.report_path.empty()) {
    if (!check::json::write_file(o.report_path, report.to_json())) {
      std::fprintf(stderr, "cannot write report %s\n", o.report_path.c_str());
      return 2;
    }
    std::printf("report written to %s\n", o.report_path.c_str());
  }

  const check::CrashCellResult* failure = report.first_failure();
  if (failure == nullptr) return 0;

  if (o.shrink) {
    std::printf("\nshrinking first failure: %s\n",
                failure->cell.label().c_str());
    const auto shrunk =
        check::shrink_crash_failure(failure->cell, o.max_shrink_runs);
    std::printf("minimal failing cell (%u runs, %u steps): %s\n", shrunk.runs,
                shrunk.steps, shrunk.minimal.label().c_str());

    check::CrashReplay replay;
    replay.cell = shrunk.minimal;
    replay.expected = check::crash_violations_of(shrunk.minimal);
    print_violations(replay.expected);
    if (replay.save(o.replay_out)) {
      std::printf("replay written to %s (mewc_vopr --replay %s)\n",
                  o.replay_out.c_str(), o.replay_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write replay %s\n", o.replay_out.c_str());
    }
  }
  return 1;
}

int run_crash_replay(const check::json::Value& replay_json,
                     const std::string& path) {
  std::string error;
  check::CrashReplay replay;
  if (!check::CrashReplay::from_json(replay_json, &replay, &error)) {
    std::fprintf(stderr, "cannot load crash replay %s: %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }

  std::printf("replaying crash cell %s\n", replay.cell.label().c_str());
  const auto violations = check::crash_violations_of(replay.cell);
  print_violations(violations);

  bool matches = violations.size() == replay.expected.size();
  for (std::size_t i = 0; matches && i < violations.size(); ++i) {
    matches = violations[i].checker == replay.expected[i].checker &&
              violations[i].detail == replay.expected[i].detail;
  }
  std::printf("verdict matches recording: %s\n", matches ? "yes" : "NO");
  return violations.empty() && matches ? 0 : 1;
}

/// One fuzz execution's observable outcome.
struct FuzzEval {
  cov::Bitmap coverage;
  std::vector<check::Violation> violations;
};

/// Runs every cell of a generation across worker threads. Each run gets its
/// own CoverageScope (thread-scoped, so workers never bleed into each
/// other); results land at their cell's index, so the caller's index-order
/// merge is independent of scheduling and of --jobs.
std::vector<FuzzEval> evaluate_generation(
    const std::vector<check::CellSpec>& batch,
    const check::CheckerOptions& checkers, unsigned jobs) {
  std::vector<FuzzEval> evals(batch.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= batch.size()) return;
      const cov::CoverageScope scope;
      const check::RunRecord record = check::run_cell(batch[i], {});
      evals[i].violations = check::run_checkers(record, checkers);
      evals[i].coverage = scope.bitmap();
    }
  };
  unsigned threads = jobs != 0 ? jobs : std::thread::hardware_concurrency();
  threads = std::max(
      1u, std::min<unsigned>(threads, static_cast<unsigned>(batch.size())));
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return evals;
}

/// A kept corpus entry: the cell plus the coverage bits it alone
/// contributed when admitted (its reason to exist; minimization preserves
/// exactly these).
struct CorpusEntry {
  check::CellSpec cell;
  cov::Bitmap novel;
};

/// Existing corpus entries under dir (entry-*.json, sorted by name) as
/// extra seed cells, so a persistent corpus carries coverage across runs.
std::vector<check::CellSpec> load_corpus(const std::string& dir) {
  std::vector<check::CellSpec> cells;
  std::error_code ec;
  if (dir.empty() || !std::filesystem::is_directory(dir, ec)) return cells;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("entry-", 0) == 0 &&
        entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    check::Replay replay;
    std::string error;
    if (check::Replay::load(path, &replay, &error)) {
      cells.push_back(replay.cell);
    } else {
      std::fprintf(stderr, "skipping corpus entry %s: %s\n", path.c_str(),
                   error.c_str());
    }
  }
  return cells;
}

bool save_corpus(const std::string& dir,
                 const std::vector<CorpusEntry>& corpus,
                 const check::CheckerOptions& checkers) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create corpus dir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  // Drop stale entries so the directory mirrors this run exactly.
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("entry-", 0) == 0 && entry.path().extension() == ".json") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "entry-%04zu.json", i);
    check::Replay replay;
    replay.cell = corpus[i].cell;
    replay.checkers = checkers;
    // expected stays empty: corpus entries replay clean by construction.
    if (!replay.save((std::filesystem::path(dir) / name).string())) {
      std::fprintf(stderr, "cannot write corpus entry %s/%s\n", dir.c_str(),
                   name);
      return false;
    }
  }
  return true;
}

int run_fuzz_mode(const Options& o) {
  check::CheckerOptions checkers;
  if (o.word_budget_c) checkers.word_budget_c = *o.word_budget_c;

  // Vet --require-site / --expect-unreachable names before spending budget.
  cov::Bitmap required;
  for (const std::string& name : o.require_sites) {
    const std::size_t idx = cov::site_index_of(name);
    if (idx == cov::kSiteCount) {
      std::fprintf(stderr, "unknown coverage site: %s\n", name.c_str());
      return 2;
    }
    required.set(static_cast<cov::Site>(idx));
  }
  cov::Bitmap unreachable;
  for (const std::string& name : o.expect_unreachable) {
    const std::size_t idx = cov::site_index_of(name);
    if (idx == cov::kSiteCount) {
      std::fprintf(stderr, "unknown coverage site: %s\n", name.c_str());
      return 2;
    }
    unreachable.set(static_cast<cov::Site>(idx));
  }

  std::vector<CorpusEntry> corpus;
  cov::Bitmap global;
  std::uint64_t execs = 0;
  std::uint64_t new_coverage_events = 0;
  std::uint64_t generations = 0;
  std::uint64_t failures = 0;
  std::array<std::uint64_t, check::kMutatorCount> applied{};
  std::array<std::uint64_t, check::kMutatorCount> kept{};
  std::optional<check::CellSpec> first_failure;
  std::vector<check::Violation> first_violations;

  // Index-order merge of one generation: deterministic growth decisions
  // regardless of which worker finished first.
  const auto absorb = [&](const std::vector<check::CellSpec>& batch,
                          const std::vector<FuzzEval>& evals,
                          const std::vector<std::size_t>* ops) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ++execs;
      if (!evals[i].violations.empty()) {
        ++failures;
        if (!first_failure) {
          first_failure = batch[i];
          first_violations = evals[i].violations;
        }
        continue;
      }
      const cov::Bitmap novel = evals[i].coverage.minus(global);
      if (!novel.any()) continue;
      global.merge(evals[i].coverage);
      corpus.push_back({batch[i], novel});
      ++new_coverage_events;
      if (ops != nullptr) ++kept[(*ops)[i]];
    }
  };

  // Seed phase: persisted corpus entries first (carrying coverage across
  // runs), then the built-in sweep.
  std::vector<check::CellSpec> seeds = load_corpus(o.corpus_dir);
  const std::size_t persisted = seeds.size();
  for (auto& cell : check::fuzz_seed_corpus(2, 7, o.fuzz_seed)) {
    seeds.push_back(std::move(cell));
  }
  if (seeds.size() > o.budget) seeds.resize(o.budget);
  std::printf("fuzz: seed %llu, budget %llu, %zu seed cells (%zu persisted)\n",
              static_cast<unsigned long long>(o.fuzz_seed),
              static_cast<unsigned long long>(o.budget), seeds.size(),
              persisted);
  absorb(seeds, evaluate_generation(seeds, checkers, o.jobs), nullptr);

  // Mutation phase: fixed-size generations; each generation's mutants are
  // derived sequentially from the one master Rng, then run in parallel.
  constexpr std::size_t kGeneration = 64;
  Rng rng(hash_combine(o.fuzz_seed, 0xf0220c07e2a6eULL));
  const check::MutationLimits limits;
  while (execs < o.budget && failures == 0 && !corpus.empty()) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(kGeneration, o.budget - execs));
    std::vector<check::CellSpec> batch;
    std::vector<std::size_t> ops;
    batch.reserve(want);
    ops.reserve(want);
    for (std::size_t i = 0; i < want; ++i) {
      const check::CellSpec& base = corpus[rng.below(corpus.size())].cell;
      const check::CellSpec& donor = corpus[rng.below(corpus.size())].cell;
      check::Mutator used{};
      batch.push_back(check::mutate(base, donor, rng, &used, limits));
      const auto op = static_cast<std::size_t>(used);
      ops.push_back(op);
      ++applied[op];
    }
    absorb(batch, evaluate_generation(batch, checkers, o.jobs), &ops);
    ++generations;
  }

  // Corpus minimization: shrink every entry while it still (a) replays
  // clean and (b) covers the novel sites that justified keeping it.
  std::uint64_t shrink_runs = 0;
  if (o.shrink && failures == 0) {
    for (CorpusEntry& entry : corpus) {
      const auto still_novel = [&](const check::CellSpec& c) {
        const cov::CoverageScope scope;
        const check::RunRecord record = check::run_cell(c, {});
        if (!check::run_checkers(record, checkers).empty()) return false;
        return scope.bitmap().covers(entry.novel);
      };
      const check::CellShrink shrunk =
          check::shrink_cell(entry.cell, still_novel, /*max_runs=*/24);
      shrink_runs += shrunk.runs;
      entry.cell = shrunk.minimal;
    }
  }

  const std::size_t covered = global.count();
  std::printf(
      "fuzz: %llu execs, %llu generations, corpus %zu, "
      "%llu new-coverage events, %zu/%zu sites covered\n",
      static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(generations), corpus.size(),
      static_cast<unsigned long long>(new_coverage_events), covered,
      cov::kSiteCount);
  std::printf("uncovered sites:");
  for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
    const auto site = static_cast<cov::Site>(i);
    if (!global.test(site)) {
      std::printf(" %s", std::string(cov::site_name(site)).c_str());
    }
  }
  std::printf("%s\n", covered == cov::kSiteCount ? " (none)" : "");

  if (!o.corpus_dir.empty() &&
      !save_corpus(o.corpus_dir, corpus, checkers)) {
    return 2;
  }

  if (!o.fuzz_report_path.empty()) {
    check::json::Object root;
    root["mewc_fuzz"] = check::json::Value(1);
    root["seed"] = check::json::Value(o.fuzz_seed);
    root["budget"] = check::json::Value(o.budget);
    root["execs"] = check::json::Value(execs);
    root["generations"] = check::json::Value(generations);
    root["failures"] = check::json::Value(failures);
    root["corpus_size"] = check::json::Value(std::uint64_t{corpus.size()});
    root["new_coverage_events"] = check::json::Value(new_coverage_events);
    root["shrink_runs"] = check::json::Value(shrink_runs);
    root["sites_total"] = check::json::Value(std::uint64_t{cov::kSiteCount});
    root["sites_covered"] = check::json::Value(std::uint64_t{covered});
    check::json::Array covered_json;
    check::json::Array uncovered_json;
    for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
      const auto site = static_cast<cov::Site>(i);
      auto& dst = global.test(site) ? covered_json : uncovered_json;
      dst.push_back(check::json::Value(std::string(cov::site_name(site))));
    }
    root["covered"] = check::json::Value(std::move(covered_json));
    root["uncovered"] = check::json::Value(std::move(uncovered_json));
    check::json::Object mutators;
    for (std::size_t i = 0; i < check::kMutatorCount; ++i) {
      check::json::Object m;
      m["applied"] = check::json::Value(applied[i]);
      m["kept"] = check::json::Value(kept[i]);
      mutators[std::string(
          check::mutator_name(static_cast<check::Mutator>(i)))] =
          check::json::Value(std::move(m));
    }
    root["mutators"] = check::json::Value(std::move(mutators));
    check::json::Array corpus_json;
    for (const CorpusEntry& entry : corpus) {
      check::json::Object e;
      e["cell"] = check::json::Value(entry.cell.label());
      check::json::Array novel_json;
      for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
        const auto site = static_cast<cov::Site>(i);
        if (entry.novel.test(site)) {
          novel_json.push_back(
              check::json::Value(std::string(cov::site_name(site))));
        }
      }
      e["novel"] = check::json::Value(std::move(novel_json));
      corpus_json.push_back(check::json::Value(std::move(e)));
    }
    root["corpus"] = check::json::Value(std::move(corpus_json));
    if (!check::json::write_file(o.fuzz_report_path,
                                 check::json::Value(std::move(root)))) {
      std::fprintf(stderr, "cannot write fuzz report %s\n",
                   o.fuzz_report_path.c_str());
      return 2;
    }
    std::printf("fuzz report written to %s\n", o.fuzz_report_path.c_str());
  }

  if (first_failure) {
    std::printf("\nFAIL %s\n", first_failure->label().c_str());
    print_violations(first_violations);
    if (o.shrink) {
      check::ShrinkOptions shrink_opts;
      shrink_opts.max_runs = o.max_shrink_runs;
      const auto shrunk =
          check::shrink_failure(*first_failure, checkers, shrink_opts);
      std::printf("minimal failing cell (%u runs, %u steps): %s\n",
                  shrunk.runs, shrunk.steps, shrunk.minimal.label().c_str());
      check::Replay replay;
      replay.cell = shrunk.minimal;
      replay.checkers = checkers;
      replay.expected = check::violations_of(shrunk.minimal, checkers);
      print_violations(replay.expected);
      if (replay.save(o.replay_out)) {
        std::printf("replay written to %s (mewc_vopr --replay %s)\n",
                    o.replay_out.c_str(), o.replay_out.c_str());
      } else {
        std::fprintf(stderr, "cannot write replay %s\n",
                     o.replay_out.c_str());
      }
      if (o.trace) render_cell_trace(shrunk.minimal);
    }
    return 1;
  }

  bool gate_missed = false;
  if (o.min_sites > 0 && covered < o.min_sites) {
    std::printf("FAIL coverage floor: %zu sites covered < required %llu\n",
                covered, static_cast<unsigned long long>(o.min_sites));
    gate_missed = true;
  }
  if (!global.covers(required)) {
    const cov::Bitmap missing = required.minus(global);
    std::printf("FAIL required sites not covered:");
    for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
      const auto site = static_cast<cov::Site>(i);
      if (missing.test(site)) {
        std::printf(" %s", std::string(cov::site_name(site)).c_str());
      }
    }
    std::printf("\n");
    gate_missed = true;
  }
  // Pinned-unreachable sites: the fuzzer reaching one means the coverage
  // map's unreachability claim (DESIGN.md section 10) is stale — fail loudly
  // so the pin gets re-examined rather than silently absorbed.
  const cov::Bitmap hit = global.minus(global.minus(unreachable));
  if (hit.any()) {
    std::printf("FAIL expected-unreachable sites were covered:");
    for (std::size_t i = 0; i < cov::kSiteCount; ++i) {
      const auto site = static_cast<cov::Site>(i);
      if (hit.test(site)) {
        std::printf(" %s", std::string(cov::site_name(site)).c_str());
      }
    }
    std::printf("\n");
    gate_missed = true;
  }
  return gate_missed ? 1 : 0;
}

int run_replay_mode(const Options& o) {
  std::string error;

  // Dispatch on the file tag: crash-cell replays carry mewc_crash_replay.
  const auto replay_json = check::json::read_file(o.replay_path, &error);
  if (!replay_json) {
    std::fprintf(stderr, "cannot read replay %s: %s\n", o.replay_path.c_str(),
                 error.c_str());
    return 2;
  }
  if ((*replay_json)["mewc_crash_replay"].as_u64() == 1) {
    return run_crash_replay(*replay_json, o.replay_path);
  }

  check::Replay replay;
  if (!check::Replay::load(o.replay_path, &replay, &error)) {
    std::fprintf(stderr, "cannot load replay %s: %s\n", o.replay_path.c_str(),
                 error.c_str());
    return 2;
  }

  std::printf("replaying %s\n", replay.cell.label().c_str());
  const auto violations = check::violations_of(replay.cell, replay.checkers);

  // Per-checker verdicts for every registered checker.
  for (const auto& checker : check::default_checkers()) {
    bool violated = false;
    for (const auto& v : violations) {
      violated = violated || v.checker == checker->name();
    }
    std::printf("  %-12s %s\n", checker->name(), violated ? "FAIL" : "ok");
  }
  print_violations(violations);

  // Bit-for-bit reproduction check: same checkers must fire as when the
  // replay was recorded.
  bool matches = violations.size() == replay.expected.size();
  for (std::size_t i = 0; matches && i < violations.size(); ++i) {
    matches = violations[i].checker == replay.expected[i].checker &&
              violations[i].detail == replay.expected[i].detail;
  }
  std::printf("verdict matches recording: %s\n", matches ? "yes" : "NO");

  if (o.trace) render_cell_trace(replay.cell);
  return violations.empty() && matches ? 0 : 1;
}

int run_list_mode() {
  std::printf("protocols:   %s\n", check::protocol_names_joined(" ").c_str());
  std::printf("adversaries: %s\n", check::adversary_names_joined(" ").c_str());
  std::printf("checkers:   ");
  for (const auto& c : check::default_checkers()) {
    std::printf(" %s", c->name());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.list) return run_list_mode();
  if (o.fuzz) return run_fuzz_mode(o);
  if (!o.replay_path.empty()) return run_replay_mode(o);
  if (!o.crash_grid_path.empty()) return run_crash_campaign_mode(o);
  return run_campaign_mode(o);
}
