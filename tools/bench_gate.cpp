// Perf-trajectory gate over the committed bench history.
//
// CI artifacts are ephemeral: a perf win shipped in one PR can silently rot
// three PRs later and nobody notices until the sweep that needed it. The fix
// is to make the trajectory durable and enforced — `bench/history/` holds
// committed `BENCH_*.json` snapshots, and this tool fails the build when the
// current run regresses >threshold% against the median of the last N entries.
//
//   bench_gate --history bench/history BENCH_sim_substrate.json ...
//   bench_gate --history bench/history --append BENCH_smr_throughput.json
//
// Each BENCH file carries a `schema` field ("mewc.bench.<name>.vK"); history
// entries live under `bench/history/<name>/NNN.json` and are compared only
// against files of the same schema. Gated metrics are a fixed table per
// schema, each either higher-is-better (throughput rates) or lower-is-better
// (words-per-op, allocation counts). A lower-is-better metric whose median
// is exactly zero is a pin: any nonzero current value fails regardless of
// the percentage threshold (0 → 1 alloc is an infinite regression).
//
// The median — not the latest entry — is the baseline, so one lucky (or
// unlucky) CI machine cannot ratchet the target. Exit codes: 0 clean,
// 1 regression (or unseeded history), 2 usage/IO error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "argparse.hpp"
#include "check/json.hpp"

namespace fs = std::filesystem;
namespace json = mewc::check::json;
using mewc::tools::parse_u32;

namespace {

struct Metric {
  const char* path;       // dotted path into the BENCH json
  bool higher_is_better;  // false → lower-is-better (counters, words/op)
  bool deterministic;     // reproduces exactly on any machine (counters,
                          // words/op) vs a wall-clock rate. Rates regress
                          // honestly only on comparable hardware, so
                          // --rates-advisory demotes them to warnings.
};

struct SchemaSpec {
  const char* schema;   // full schema string the BENCH file carries
  const char* dir;      // subdirectory of --history holding its snapshots
  std::vector<Metric> metrics;
};

// The gated metrics deliberately mix wall-clock rates (noisy, guarded by the
// percentage threshold) with deterministic counters (words per op, steady-
// state allocations) that must not move at all.
const std::vector<SchemaSpec> kSchemas = {
    {"mewc.bench.sim_substrate.v1",
     "sim_substrate",
     {
         {"microbench.rounds_per_sec", true, false},
         {"microbench.steady_state_allocs", false, true},
         {"campaign_smoke.cells_per_sec", true, false},
         {"campaign_smoke.allocs_per_cell", false, true},
         {"codec.views_per_sec", true, false},
         {"codec.view_steady_state_allocs", false, true},
     }},
    {"mewc.bench.smr_throughput.v1",
     "smr_throughput",
     {
         {"batch_sweep.words_per_op_batch32", false, true},
         {"batch_sweep.words_per_op_reduction_at_32", true, true},
         {"durability.wal_bytes", false, true},
         {"durability.snapshot_bytes", false, true},
         // Time ratio of durable vs plain sweeps — wall-clock, not a
         // counter, despite the name.
         {"durability.wal_overhead_ratio", false, false},
         // Real-backend amortization counters: pairings and memo hits for
         // the fixed backend-sweep workload reproduce exactly, so drift
         // means batching or memoization changed. The slowdown ratio is
         // wall-clock (advisory under --rates-advisory).
         {"backend_sweep.real_pairings", false, true},
         {"backend_sweep.real_memo_hits", true, true},
         {"backend_sweep.real_slowdown_vs_sim", false, false},
     }},
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(stderr,
               "usage: %s [--history DIR] [--window N] [--threshold PCT]\n"
               "          [--append] BENCH_*.json...\n"
               "  --history DIR    committed snapshots root "
               "(default bench/history)\n"
               "  --window N       compare against median of last N entries "
               "(default 8)\n"
               "  --threshold PCT  max tolerated regression in percent "
               "(default 10)\n"
               "  --append         copy each file into history as the next "
               "entry instead of checking\n"
               "  --rates-advisory demote wall-clock rate regressions to "
               "warnings (CI runs on\n"
               "                   different hardware than the committed "
               "history; deterministic\n"
               "                   counters still fail hard)\n",
               self);
  std::exit(2);
}

/// Resolves a dotted path ("microbench.rounds_per_sec") to a number.
std::optional<double> lookup(const json::Value& root, const char* path) {
  const json::Value* v = &root;
  std::string p(path);
  std::size_t start = 0;
  while (start <= p.size()) {
    const std::size_t dot = p.find('.', start);
    const std::string key =
        p.substr(start, dot == std::string::npos ? dot : dot - start);
    v = &(*v)[key];
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (!v->is_number()) return std::nullopt;
  return v->as_double();
}

const SchemaSpec* spec_for(const json::Value& bench) {
  const auto& schema = bench["schema"];
  if (!schema.is_string()) return nullptr;
  for (const auto& s : kSchemas) {
    if (schema.as_string() == s.schema) return &s;
  }
  return nullptr;
}

/// Last `window` history snapshots for a schema, oldest first. Filenames
/// under the schema dir sort lexicographically (zero-padded sequence
/// numbers), so "last" is just the sorted tail.
std::vector<json::Value> load_history(const fs::path& dir,
                                      const SchemaSpec& spec,
                                      std::uint32_t window) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir / spec.dir, ec)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.size() > window) {
    files.erase(files.begin(),
                files.end() - static_cast<std::ptrdiff_t>(window));
  }
  std::vector<json::Value> out;
  for (const auto& f : files) {
    std::string error;
    auto v = json::read_file(f.string(), &error);
    if (!v) {
      std::fprintf(stderr, "bench_gate: bad history entry %s: %s\n",
                   f.string().c_str(), error.c_str());
      std::exit(2);
    }
    const auto& schema = (*v)["schema"];
    if (!schema.is_string() || schema.as_string() != spec.schema) {
      std::fprintf(stderr, "bench_gate: %s does not carry schema %s\n",
                   f.string().c_str(), spec.schema);
      std::exit(2);
    }
    out.push_back(std::move(*v));
  }
  return out;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

/// Checks one BENCH file against history; returns true when clean.
bool check_file(const std::string& path, const fs::path& history,
                std::uint32_t window, std::uint32_t threshold_pct,
                bool rates_advisory) {
  std::string error;
  auto bench = json::read_file(path, &error);
  if (!bench) {
    std::fprintf(stderr, "bench_gate: cannot read %s: %s\n", path.c_str(),
                 error.c_str());
    std::exit(2);
  }
  const SchemaSpec* spec = spec_for(*bench);
  if (spec == nullptr) {
    std::fprintf(stderr, "bench_gate: %s: unknown or missing schema\n",
                 path.c_str());
    std::exit(2);
  }
  const auto entries = load_history(history, *spec, window);
  if (entries.empty()) {
    std::fprintf(stderr,
                 "bench_gate: no history for %s under %s — seed it with "
                 "--append first\n",
                 spec->schema, (history / spec->dir).string().c_str());
    return false;
  }

  std::printf("%s vs %zu history entr%s (threshold %u%%)\n", path.c_str(),
              entries.size(), entries.size() == 1 ? "y" : "ies",
              threshold_pct);
  bool ok = true;
  for (const auto& m : spec->metrics) {
    const auto current = lookup(*bench, m.path);
    if (!current) {
      std::printf("  MISSING     %-42s not in current run\n", m.path);
      ok = false;
      continue;
    }
    std::vector<double> history_values;
    for (const auto& e : entries) {
      if (const auto v = lookup(e, m.path)) history_values.push_back(*v);
    }
    if (history_values.empty()) {
      // Metric added after the oldest snapshots — nothing to compare yet.
      std::printf("  new         %-42s %.6g (no history yet)\n", m.path,
                  *current);
      continue;
    }
    const double med = median(history_values);
    const double frac = threshold_pct / 100.0;
    bool regressed = false;
    if (m.higher_is_better) {
      regressed = *current < med * (1.0 - frac);
    } else if (med == 0.0) {
      regressed = *current > 0.0;  // zero-pinned counter
    } else {
      regressed = *current > med * (1.0 + frac);
    }
    const bool advisory = regressed && rates_advisory && !m.deterministic;
    std::printf("  %-11s %-42s %.6g vs median %.6g\n",
                !regressed  ? "ok"
                : advisory  ? "SLOWER(adv)"
                            : "REGRESSION",
                m.path, *current, med);
    if (regressed && !advisory) ok = false;
  }
  return ok;
}

/// Copies `path` into history as the next zero-padded sequence entry.
void append_file(const std::string& path, const fs::path& history) {
  std::string error;
  auto bench = json::read_file(path, &error);
  if (!bench) {
    std::fprintf(stderr, "bench_gate: cannot read %s: %s\n", path.c_str(),
                 error.c_str());
    std::exit(2);
  }
  const SchemaSpec* spec = spec_for(*bench);
  if (spec == nullptr) {
    std::fprintf(stderr, "bench_gate: %s: unknown or missing schema\n",
                 path.c_str());
    std::exit(2);
  }
  const fs::path dir = history / spec->dir;
  std::error_code ec;
  fs::create_directories(dir, ec);
  unsigned next = 1;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string stem = entry.path().stem().string();
    unsigned seq = 0;
    if (std::sscanf(stem.c_str(), "%u", &seq) == 1 && seq >= next) {
      next = seq + 1;
    }
  }
  char name[16];
  std::snprintf(name, sizeof(name), "%04u.json", next);
  const fs::path dest = dir / name;
  if (!json::write_file(dest.string(), *bench)) {
    std::fprintf(stderr, "bench_gate: cannot write %s\n",
                 dest.string().c_str());
    std::exit(2);
  }
  std::printf("appended %s -> %s\n", path.c_str(), dest.string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  fs::path history = "bench/history";
  std::uint32_t window = 8;
  std::uint32_t threshold_pct = 10;
  bool append = false;
  bool rates_advisory = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--history") {
      history = need();
    } else if (arg == "--window") {
      window = parse_u32("--window", need(), 1000);
      if (window == 0) usage_and_exit(argv[0]);
    } else if (arg == "--threshold") {
      threshold_pct = parse_u32("--threshold", need(), 1000);
    } else if (arg == "--append") {
      append = true;
    } else if (arg == "--rates-advisory") {
      rates_advisory = true;
    } else if (arg == "--help" || arg[0] == '-') {
      usage_and_exit(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) usage_and_exit(argv[0]);

  bool ok = true;
  for (const auto& f : files) {
    if (append) {
      append_file(f, history);
    } else {
      ok = check_file(f, history, window, threshold_pct, rates_advisory) &&
           ok;
    }
  }
  if (!append) {
    std::printf("%s\n", ok ? "bench gate: PASS" : "bench gate: FAIL");
  }
  return ok ? 0 : 1;
}
