// mewc_trace — ASCII space-time diagram of one protocol run.
//
// Prints a rounds x processes grid showing, for every round in which
// traffic flowed, what each process sent (one letter per message kind,
// lowercase for Byzantine senders), plus a per-round kind legend. Silent
// rounds are elided — which makes the paper's silent-phase mechanism
// directly visible: an adaptive run is mostly blank.
//
// Usage mirrors mewc_sim:
//   mewc_trace [--protocol bb|weak-ba|strong-ba] [--t T] [--f F]
//              [--adversary none|crash|killer|silent-sender] [--seed SEED]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"

namespace {

using namespace mewc;

struct Options {
  std::string protocol = "weak-ba";
  std::uint32_t t = 2;
  std::uint32_t f = 0;
  std::string adversary = "none";
  std::uint64_t seed = 0x5e7;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      o.protocol = need();
    } else if (!std::strcmp(argv[i], "--t")) {
      o.t = static_cast<std::uint32_t>(std::atoi(need()));
    } else if (!std::strcmp(argv[i], "--f")) {
      o.f = static_cast<std::uint32_t>(std::atoi(need()));
    } else if (!std::strcmp(argv[i], "--adversary")) {
      o.adversary = need();
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = std::strtoull(need(), nullptr, 0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

/// One letter per message kind, stable across runs.
char glyph_for(const std::string& kind) {
  static const std::map<std::string, char> table = {
      {"bb.sender_value", 'S'}, {"bb.help_req", 'H'},
      {"bb.reply_value", 'R'},  {"bb.idk", 'I'},
      {"bb.leader_value", 'L'}, {"wba.propose", 'P'},
      {"wba.vote", 'V'},        {"wba.commit", 'C'},
      {"wba.decide", 'D'},      {"wba.finalized", 'F'},
      {"wba.help_req", 'H'},    {"wba.help", 'A'},
      {"wba.fallback", 'B'},    {"sba.input", 'N'},
      {"sba.propose_cert", 'P'},{"sba.decide_vote", 'D'},
      {"sba.decide_cert", 'C'}, {"sba.fallback", 'B'},
      {"ds.relay", '*'},
  };
  auto it = table.find(kind);
  return it == table.end() ? '?' : it->second;
}

int run(const Options& o) {
  auto spec = harness::RunSpec::for_t(o.t);
  spec.seed = o.seed;

  // cell[round][process] = glyph of the (last) kind sent that round.
  std::map<Round, std::vector<char>> cells;
  std::map<Round, std::set<std::string>> kinds;
  spec.recorder = [&](const Message& m, bool correct) {
    auto& row = cells[m.round];
    if (row.empty()) row.assign(spec.n, '.');
    const char g = glyph_for(m.body->kind());
    row[m.from] =
        correct ? g : static_cast<char>(std::tolower(static_cast<int>(g)));
    kinds[m.round].insert(m.body->kind());
  };

  std::vector<ProcessId> victims;
  for (std::uint32_t i = 0; i < o.f; ++i) victims.push_back(i);

  std::unique_ptr<Adversary> adversary;
  if (o.adversary == "crash") {
    adversary = std::make_unique<adv::CrashAdversary>(victims);
  } else if (o.adversary == "killer") {
    const Round first = o.protocol == "bb" ? 4 : 3;
    const Round len = o.protocol == "bb" ? 3 : 5;
    adversary =
        std::make_unique<adv::AdaptiveLeaderCrash>(first, len, spec.n, o.f);
  } else if (o.adversary == "silent-sender") {
    adversary = std::make_unique<adv::CrashAdversary>(
        std::vector<ProcessId>{spec.n - 1});
  } else {
    adversary = std::make_unique<adv::NullAdversary>();
  }

  bool agreement = false;
  Round total_rounds = 0;
  if (o.protocol == "bb") {
    const auto res =
        harness::run_bb(spec, spec.n - 1, Value(7), *adversary);
    agreement = res.agreement();
    total_rounds = res.rounds;
  } else if (o.protocol == "weak-ba") {
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(7))),
        harness::always_valid_factory(), *adversary);
    agreement = res.agreement();
    total_rounds = res.rounds;
  } else if (o.protocol == "strong-ba") {
    const auto res = harness::run_strong_ba(
        spec, std::vector<Value>(spec.n, Value(1)), *adversary);
    agreement = res.agreement();
    total_rounds = res.rounds;
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", o.protocol.c_str());
    return 2;
  }

  std::printf("space-time diagram: %s, n = %u, adversary = %s (f = %u)\n",
              o.protocol.c_str(), spec.n, o.adversary.c_str(), o.f);
  std::printf("rows = rounds with traffic (of %u total; blank rounds are the "
              "silent phases)\n", total_rounds);
  std::printf("columns = processes; lowercase = Byzantine sender\n\n");

  std::printf("round |");
  for (ProcessId p = 0; p < spec.n; ++p) std::printf("%2u", p % 100);
  std::printf(" | kinds\n");
  std::printf("------+%s-+------\n", std::string(2 * spec.n, '-').c_str());
  Round last_printed = 0;
  for (const auto& [round, row] : cells) {
    if (last_printed != 0 && round > last_printed + 1) {
      std::printf("  ... |%s |  (%u silent rounds)\n",
                  std::string(2 * spec.n, ' ').c_str(),
                  round - last_printed - 1);
    }
    std::printf("%5u |", round);
    for (char c : row) std::printf(" %c", c);
    std::printf(" | ");
    bool first = true;
    for (const auto& k : kinds[round]) {
      std::printf("%s%s", first ? "" : ", ", k.c_str());
      first = false;
    }
    std::printf("\n");
    last_printed = round;
  }
  if (last_printed < total_rounds) {
    std::printf("  ... |%s |  (%u silent rounds to the end)\n",
                std::string(2 * spec.n, ' ').c_str(),
                total_rounds - last_printed);
  }
  std::printf("\nagreement: %s\n", agreement ? "yes" : "NO");
  return agreement ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(parse(argc, argv)); }
