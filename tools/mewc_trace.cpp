// mewc_trace — ASCII space-time diagram of one protocol run.
//
// Prints a rounds x processes grid showing, for every round in which
// traffic flowed, what each process sent (one letter per message kind,
// lowercase for Byzantine senders), plus a per-round kind legend. Silent
// rounds are elided — which makes the paper's silent-phase mechanism
// directly visible: an adaptive run is mostly blank.
//
// Runs through the src/check cell runner, so every protocol and every
// registered adversary is available, and the invariant checkers' verdicts
// are printed under the diagram.
//
// Usage mirrors mewc_sim:
//   mewc_trace [--protocol bb|weak-ba|strong-ba|fallback|ds-bb]
//              [--t T] [--n N] [--f F] [--adversary NAME] [--seed SEED]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "argparse.hpp"
#include "check/adversary_registry.hpp"
#include "check/checkers.hpp"
#include "check/runner.hpp"
#include "sim/trace.hpp"

namespace {

using namespace mewc;
using tools::parse_u32;
using tools::parse_u64;

struct Options {
  std::string protocol = "weak-ba";
  std::uint32_t t = 2;
  std::uint32_t n = 0;  // 0: derive 2t+1
  std::uint32_t f = 0;
  std::string adversary = "none";
  std::uint64_t seed = 0x5e7;
  std::string executor = "lockstep";
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(stderr,
               "usage: %s [--protocol %s]\n"
               "          [--t T] [--n N] [--f F] [--adversary %s]\n"
               "          [--seed SEED] [--executor lockstep|event]\n",
               self, check::protocol_names_joined().c_str(),
               check::adversary_names_joined().c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      o.protocol = need();
    } else if (!std::strcmp(argv[i], "--t")) {
      o.t = parse_u32("--t", need());
    } else if (!std::strcmp(argv[i], "--n")) {
      o.n = parse_u32("--n", need());
    } else if (!std::strcmp(argv[i], "--f")) {
      o.f = parse_u32("--f", need());
    } else if (!std::strcmp(argv[i], "--adversary")) {
      o.adversary = need();
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = parse_u64("--seed", need());
    } else if (!std::strcmp(argv[i], "--executor")) {
      o.executor = need();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    }
  }
  return o;
}

int run(const Options& o) {
  const auto proto = check::parse_protocol(o.protocol);
  if (!proto) {
    std::fprintf(stderr, "unknown protocol: %s (expected %s)\n",
                 o.protocol.c_str(),
                 check::protocol_names_joined().c_str());
    return 2;
  }
  const auto& names = check::adversary_names();
  if (std::find(names.begin(), names.end(), o.adversary) == names.end()) {
    std::fprintf(stderr, "unknown adversary: %s (expected %s)\n",
                 o.adversary.c_str(),
                 check::adversary_names_joined().c_str());
    return 2;
  }

  check::CellSpec cell;
  cell.protocol = *proto;
  cell.t = o.t;
  cell.n = o.n == 0 ? n_for_t(o.t) : o.n;
  cell.f = o.f;
  cell.adversary = o.adversary;
  cell.seed = o.seed;
  const auto executor = parse_executor_kind(o.executor);
  if (!executor) {
    std::fprintf(stderr, "unknown executor '%s' (expected lockstep|event)\n",
                 o.executor.c_str());
    return 2;
  }
  cell.executor = *executor;
  if (cell.t == 0 || cell.n < 2 * cell.t + 1) {
    std::fprintf(stderr, "need t >= 1 and n >= 2t+1\n");
    return 2;
  }

  check::RunOptions run_opts;
  run_opts.record_messages = true;
  const check::RunRecord record = check::run_cell(cell, run_opts);

  sim::SpaceTime diagram(cell.n);
  for (const auto& m : record.log.messages) {
    diagram.observe(m.from, m.round, m.kind, m.correct);
  }

  std::printf("space-time diagram: %s, n = %u, adversary = %s (f = %u)\n",
              o.protocol.c_str(), cell.n, o.adversary.c_str(), o.f);
  std::printf("rows = rounds with traffic (of %u total; blank rounds are the "
              "silent phases)\n", record.rounds);
  std::printf("columns = processes; lowercase = Byzantine sender\n\n");
  diagram.render(stdout, record.rounds);

  const auto violations = check::run_checkers(record, check::CheckerOptions{});
  std::printf("\ninvariants: %s\n",
              violations.empty() ? "all hold" : "VIOLATED");
  for (const auto& v : violations) {
    std::printf("  [%s] %s\n", v.checker.c_str(), v.detail.c_str());
  }
  return violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(parse(argc, argv)); }
