// mewc_sim — command-line protocol runner.
//
// Runs one instance of any protocol in the driver registry against a chosen
// adversary and prints the outcome, the word/signature meter, and the
// per-kind cost breakdown. Useful for exploring the protocols without
// writing code, and for scripting custom sweeps.
//
// With --smr it instead drives the pipelined multi-instance SMR engine:
// many BB instances (ledger slots) run concurrently on a worker pool and
// commit in order, which is the paper's amortized-cost story end to end.
//
// Usage:
//   mewc_sim [--protocol NAME]      (names: mewc_sim --help)
//            [--t T] [--n N] [--f F]
//            [--adversary NAME]     (mewc_vopr --list shows all names)
//            [--value V] [--sender S] [--seed SEED] [--backend sim|shamir|real]
//            [--executor lockstep|event] [--by-kind] [--by-round]
//   mewc_sim --smr [--slots K] [--workers W] [--queue Q]
//            [--checkpoint-every C] [--t T] [--n N] [--seed SEED]
//            [--backend sim|shamir|real] [--executor lockstep|event]
//            [--wal-dir DIR] [--recover]
//
// --executor picks the IExecutor implementation (DESIGN.md §14): the
// round-lockstep loop or the event-driven path over a loopback transport.
// Both are behaviour-identical; the flag exists to exercise the event path
// against any workload this tool can express.
//
// In --smr mode the checkpoint cadence defaults to 8 (pass
// --checkpoint-every 0 to disable), and a run that should have sealed
// checkpoints but sealed none exits nonzero — the checkpoint lane is load-
// bearing for durability, so it must actually be exercised. --wal-dir
// persists the WAL and latest certified snapshot under DIR; --recover loads
// them first, recovers (truncating any torn WAL tail), completes a pending
// checkpoint, and continues the workload from the recovered slot.
//
// Examples:
//   mewc_sim --protocol bb --t 10 --f 3 --adversary crash
//   mewc_sim --protocol weak-ba --t 5 --adversary killer --f 2 --by-kind
//   mewc_sim --protocol strong-ba --t 20            # failure-free O(n)
//   mewc_sim --smr --n 9 --t 4 --slots 64 --workers 4 --checkpoint-every 8
//   mewc_sim --smr --slots 64 --wal-dir /tmp/mewc-wal
//   mewc_sim --smr --slots 64 --wal-dir /tmp/mewc-wal --recover
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "argparse.hpp"
#include <string>

#include "ba/adversaries/adversaries.hpp"
#include "ba/harness.hpp"
#include "check/adversary_registry.hpp"
#include "check/protocols.hpp"
#include "smr/engine.hpp"
#include "smr/recovery.hpp"

namespace {

using namespace mewc;
using tools::parse_u32;
using tools::parse_u64;

struct Options {
  std::string protocol = "bb";
  std::uint32_t t = 3;
  std::uint32_t n = 0;  // 0: derive 2t+1
  std::uint32_t f = 0;
  std::string adversary = "none";
  std::uint64_t value = 7;
  ProcessId sender = 0;
  std::uint64_t seed = 0x5e7;
  std::string backend = "sim";
  std::string executor = "lockstep";
  bool by_kind = false;
  bool by_round = false;
  // --smr mode
  bool smr = false;
  std::uint64_t slots = 32;
  std::uint32_t workers = 1;
  std::uint32_t queue = 16;
  /// UINT32_MAX = unset; --smr then defaults to a cadence of 8 so the
  /// checkpoint lane is exercised unless explicitly disabled with 0.
  std::uint32_t checkpoint_every = UINT32_MAX;
  std::string wal_dir;
  bool recover = false;
};

std::string driver_names_joined() {
  std::string out;
  for (const harness::ProtocolDriver* d : harness::drivers()) {
    if (!out.empty()) out += "|";
    out += d->name();
  }
  return out;
}

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol %s]\n"
      "          [--t T] [--n N] [--f F]\n"
      "          [--adversary NAME]  (names: see below)\n"
      "          [--value V] [--sender S] [--seed SEED]\n"
      "          [--backend sim|shamir|real] [--executor lockstep|event]\n"
      "          [--by-kind] [--by-round]\n"
      "       %s --smr [--slots K] [--workers W] [--queue Q]\n"
      "          [--checkpoint-every C] [--t T] [--n N] [--seed SEED]\n"
      "          [--executor lockstep|event] [--wal-dir DIR] [--recover]\n",
      self, driver_names_joined().c_str(), self);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      o.protocol = need("--protocol");
    } else if (!std::strcmp(argv[i], "--t")) {
      o.t = parse_u32("--t", need("--t"));
    } else if (!std::strcmp(argv[i], "--n")) {
      o.n = parse_u32("--n", need("--n"));
    } else if (!std::strcmp(argv[i], "--f")) {
      o.f = parse_u32("--f", need("--f"));
    } else if (!std::strcmp(argv[i], "--adversary")) {
      o.adversary = need("--adversary");
    } else if (!std::strcmp(argv[i], "--value")) {
      o.value = parse_u64("--value", need("--value"));
    } else if (!std::strcmp(argv[i], "--sender")) {
      o.sender = parse_u32("--sender", need("--sender"));
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = parse_u64("--seed", need("--seed"));
    } else if (!std::strcmp(argv[i], "--backend")) {
      o.backend = need("--backend");
    } else if (!std::strcmp(argv[i], "--executor")) {
      o.executor = need("--executor");
    } else if (!std::strcmp(argv[i], "--by-kind")) {
      o.by_kind = true;
    } else if (!std::strcmp(argv[i], "--by-round")) {
      o.by_round = true;
    } else if (!std::strcmp(argv[i], "--smr")) {
      o.smr = true;
    } else if (!std::strcmp(argv[i], "--slots")) {
      o.slots = parse_u64("--slots", need("--slots"));
    } else if (!std::strcmp(argv[i], "--workers")) {
      o.workers = parse_u32("--workers", need("--workers"));
    } else if (!std::strcmp(argv[i], "--queue")) {
      o.queue = parse_u32("--queue", need("--queue"));
    } else if (!std::strcmp(argv[i], "--checkpoint-every")) {
      o.checkpoint_every = parse_u32("--checkpoint-every", need("--checkpoint-every"));
    } else if (!std::strcmp(argv[i], "--wal-dir")) {
      o.wal_dir = need("--wal-dir");
    } else if (!std::strcmp(argv[i], "--recover")) {
      o.recover = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    }
  }
  return o;
}

std::unique_ptr<Adversary> make_adversary(const Options& o,
                                          const harness::RunSpec& spec) {
  const auto protocol = check::parse_protocol(o.protocol);
  if (!protocol) {
    // Drivers outside the check enum (e.g. ic) run failure-free only.
    if (o.adversary == "none") return std::make_unique<adv::NullAdversary>();
    std::fprintf(stderr, "protocol %s supports only --adversary none\n",
                 o.protocol.c_str());
    std::exit(2);
  }
  check::AdversaryParams params;
  params.protocol = *protocol;
  params.n = spec.n;
  params.t = spec.t;
  params.f = o.f;
  params.instance = spec.instance;
  params.seed = o.seed;
  params.value = o.value;
  params.sender = o.sender;
  auto adversary = check::make_adversary(o.adversary, params);
  if (adversary == nullptr) {
    std::fprintf(stderr, "unknown adversary: %s (expected %s)\n",
                 o.adversary.c_str(),
                 check::adversary_names_joined().c_str());
    std::exit(2);
  }
  return adversary;
}

void print_meter(const Options& o, const Meter& meter, Round rounds) {
  std::printf("words (correct senders):    %llu\n",
              static_cast<unsigned long long>(meter.words_correct));
  std::printf("messages (correct senders): %llu\n",
              static_cast<unsigned long long>(meter.messages_correct));
  std::printf("logical signatures moved:   %llu\n",
              static_cast<unsigned long long>(meter.logical_sigs_correct));
  std::printf("byzantine words (excluded): %llu\n",
              static_cast<unsigned long long>(meter.words_byzantine));
  std::printf("rounds:                     %u\n", rounds);
  if (o.by_kind) {
    std::printf("\nwords by message kind:\n");
    for (const auto& [kind, words] : meter.words_by_kind()) {
      std::printf("  %-18s %llu\n", kind.c_str(),
                  static_cast<unsigned long long>(words));
    }
  }
  if (o.by_round) {
    std::printf("\nwords by round (non-zero only):\n");
    for (Round r = 0; r < meter.words_by_round.size(); ++r) {
      if (meter.words_by_round[r] == 0) continue;
      std::printf("  round %-4u %llu\n", r,
                  static_cast<unsigned long long>(meter.words_by_round[r]));
    }
  }
}

void print_decision(const harness::RunReport& res, bool vector_output) {
  if (vector_output) {
    std::printf("vector:    [");
    const auto vec = res.vector();
    for (std::size_t i = 0; i < vec.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " ",
                  vec[i].is_bottom() ? "⊥"
                                     : std::to_string(vec[i].raw).c_str());
    }
    std::printf("]\n");
    return;
  }
  const WireValue d = res.decision();
  std::printf("decision:  %s\n",
              d.value.is_bottom() ? "⊥"
                                  : std::to_string(d.value.raw).c_str());
}

int run_one(const Options& o) {
  const harness::ProtocolDriver* driver = harness::find_driver(o.protocol);
  if (driver == nullptr) {
    std::fprintf(stderr, "unknown protocol: %s (expected %s)\n",
                 o.protocol.c_str(), driver_names_joined().c_str());
    return 2;
  }

  harness::RunSpec spec = o.n == 0 ? harness::RunSpec::for_t(o.t)
                                   : harness::RunSpec::with(o.n, o.t);
  spec.seed = o.seed;
  const auto backend = parse_backend(o.backend);
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s' (expected sim|shamir|real)\n",
                 o.backend.c_str());
    return 2;
  }
  spec.backend = *backend;
  const auto executor = parse_executor_kind(o.executor);
  if (!executor) {
    std::fprintf(stderr, "unknown executor '%s' (expected lockstep|event)\n",
                 o.executor.c_str());
    return 2;
  }
  spec.executor = *executor;

  std::printf("protocol=%s %s adversary=%s f=%u\n\n", driver->name(),
              spec.describe().c_str(), o.adversary.c_str(), o.f);

  auto adversary = make_adversary(o, spec);
  const harness::DriverTraits traits = driver->traits();

  harness::RunInputs inputs;
  inputs.values = driver->prepare(spec.n, Value(o.value));
  if (traits.single_sender) inputs.sender = o.sender;

  const harness::RunReport res = driver->run(spec, inputs, *adversary);

  std::uint32_t correct = 0;
  std::uint32_t decided = 0;
  for (ProcessId p = 0; p < spec.n; ++p) {
    if (res.is_corrupted(p)) continue;
    ++correct;
    decided += res.decided[p] ? 1 : 0;
  }

  std::printf("agreement: %s\n", res.agreement() ? "yes" : "NO");
  print_decision(res, traits.vector_output);
  std::printf("decided:   %u/%u correct\n", decided, correct);
  std::printf("fallback:  %s\n", res.any_fallback ? "yes" : "no");
  if (res.nonsilent_leaders != 0) {
    std::printf("non-silent vetting leaders: %u\n", res.nonsilent_leaders);
  }
  if (res.help_reqs != 0) {
    std::printf("help requests: %u\n", res.help_reqs);
  }
  std::printf("\n");
  print_meter(o, res.meter, res.rounds);
  return res.agreement() ? 0 : 1;
}

int run_smr(const Options& o) {
  smr::EngineConfig config;
  config.t = o.t;
  config.n = o.n == 0 ? 2 * o.t + 1 : o.n;
  const auto backend = parse_backend(o.backend);
  if (!backend) {
    std::fprintf(stderr, "unknown backend '%s' (expected sim|shamir|real)\n",
                 o.backend.c_str());
    return 2;
  }
  config.backend = *backend;
  const auto executor = parse_executor_kind(o.executor);
  if (!executor) {
    std::fprintf(stderr, "unknown executor '%s' (expected lockstep|event)\n",
                 o.executor.c_str());
    return 2;
  }
  config.executor = *executor;
  config.seed = o.seed;
  config.workers = o.workers;
  config.queue_capacity = o.queue;
  config.checkpoint_every =
      o.checkpoint_every == UINT32_MAX ? 8 : o.checkpoint_every;

  if (o.recover && o.wal_dir.empty()) {
    std::fprintf(stderr, "--recover needs --wal-dir DIR\n");
    return 2;
  }

  std::printf("smr n=%u t=%u workers=%u queue=%u checkpoint_every=%u "
              "slots=%llu seed=%llu\n\n",
              config.n, config.t, config.workers, config.queue_capacity,
              config.checkpoint_every,
              static_cast<unsigned long long>(o.slots),
              static_cast<unsigned long long>(o.seed));

  // Durable mode: all committed slots and sealed checkpoints stream into
  // DIR/wal.bin, certified checkpoints cut DIR/snapshot.bin.
  smr::Store store;
  std::optional<smr::Durability> durability;
  std::optional<smr::Recovered> recovered;
  if (!o.wal_dir.empty()) {
    if (o.recover) {
      auto loaded = smr::load_store(o.wal_dir);
      if (!loaded) {
        std::fprintf(stderr, "cannot read store under %s\n", o.wal_dir.c_str());
        return 2;
      }
      store = std::move(*loaded);
      smr::Ledger::Config lc;
      lc.n = config.n;
      lc.t = config.t;
      lc.backend = config.backend;
      lc.seed = config.seed;
      lc.checkpoint_every = config.checkpoint_every;
      recovered = smr::recover(lc, store);
      std::printf("recovered %zu slots from %s (snapshot: %s @ %llu, "
                  "%llu WAL records replayed, %llu torn bytes truncated, "
                  "checkpoint pending: %s)\n\n",
                  recovered->state.slots.size(), o.wal_dir.c_str(),
                  recovered->stats.used_snapshot ? "yes" : "no",
                  static_cast<unsigned long long>(
                      recovered->stats.snapshot_slot),
                  static_cast<unsigned long long>(
                      recovered->stats.records_replayed),
                  static_cast<unsigned long long>(
                      recovered->stats.wal_bytes_truncated),
                  recovered->stats.checkpoint_pending ? "yes" : "no");
    }
    durability.emplace(&store);
    if (recovered) durability->reset_kv(recovered->kv);
    config.durability = &*durability;
  }

  const auto start = std::chrono::steady_clock::now();
  smr::Engine engine(config);
  std::uint64_t first_slot = 0;
  if (recovered) {
    first_slot = recovered->state.slots.size();
    engine.restore(std::move(recovered->state));
  }
  for (std::uint64_t s = first_slot; s < o.slots; ++s) {
    engine.submit(Value(o.value + s));
  }
  engine.finish();
  if (!o.wal_dir.empty() && !smr::save_store(o.wal_dir, store)) {
    std::fprintf(stderr, "cannot write store under %s\n", o.wal_dir.c_str());
    return 2;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const smr::EngineStats stats = engine.stats();
  const smr::Ledger& ledger = engine.ledger();
  std::printf("committed: %llu (%llu skipped, %llu fallbacks)\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.skipped),
              static_cast<unsigned long long>(stats.fallbacks));
  std::printf("healthy:   %s\n", ledger.healthy() ? "yes" : "NO");
  std::printf("ledger digest: %016llx\n",
              static_cast<unsigned long long>(ledger.ledger_digest()));
  std::printf("checkpoints:   %zu\n", ledger.checkpoints().size());
  std::printf("total words:   %llu (%.1f per slot incl. checkpoints)\n",
              static_cast<unsigned long long>(ledger.total_words()),
              o.slots == 0 ? 0.0
                           : static_cast<double>(ledger.total_words()) /
                                 static_cast<double>(o.slots));
  std::printf("setup cache:   %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.setup_cache_hits),
              static_cast<unsigned long long>(stats.setup_cache_misses));
  std::printf("pipeline:      max reorder %llu, backpressure waits %llu\n",
              static_cast<unsigned long long>(stats.max_reorder_depth),
              static_cast<unsigned long long>(stats.backpressure_waits));
  std::printf("throughput:    %.1f instances/sec (%.3fs wall)\n",
              secs > 0 ? static_cast<double>(o.slots) / secs : 0.0, secs);
  if (!o.wal_dir.empty()) {
    std::printf("durable store: %zu WAL bytes, %zu snapshot bytes under %s\n",
                store.wal.size(), store.snapshot.size(), o.wal_dir.c_str());
  }
  // The checkpoint lane must actually run when the cadence says it should;
  // a silent zero here means the durability story went untested.
  if (config.checkpoint_every != 0 && o.slots >= config.checkpoint_every &&
      ledger.checkpoints().empty()) {
    std::printf("FAIL: cadence %u with %llu slots sealed no checkpoints\n",
                config.checkpoint_every,
                static_cast<unsigned long long>(o.slots));
    return 1;
  }
  return ledger.healthy() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  return o.smr ? run_smr(o) : run_one(o);
}
