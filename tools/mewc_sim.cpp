// mewc_sim — command-line protocol runner.
//
// Runs one instance of any protocol in the library against a chosen
// adversary and prints the outcome, the word/signature meter, and the
// per-kind cost breakdown. Useful for exploring the protocols without
// writing code, and for scripting custom sweeps.
//
// Usage:
//   mewc_sim [--protocol bb|weak-ba|strong-ba|fallback|ds-bb]
//            [--t T] [--n N] [--f F]
//            [--adversary NAME]   (mewc_vopr --list shows all names)
//            [--value V] [--sender S] [--seed SEED] [--backend sim|shamir]
//            [--by-kind] [--by-round]
//
// Examples:
//   mewc_sim --protocol bb --t 10 --f 3 --adversary crash
//   mewc_sim --protocol weak-ba --t 5 --adversary killer --f 2 --by-kind
//   mewc_sim --protocol strong-ba --t 20            # failure-free O(n)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ba/harness.hpp"
#include "check/adversary_registry.hpp"

namespace {

using namespace mewc;

struct Options {
  std::string protocol = "bb";
  std::uint32_t t = 3;
  std::uint32_t n = 0;  // 0: derive 2t+1
  std::uint32_t f = 0;
  std::string adversary = "none";
  std::uint64_t value = 7;
  ProcessId sender = 0;
  std::uint64_t seed = 0x5e7;
  std::string backend = "sim";
  bool by_kind = false;
  bool by_round = false;
};

[[noreturn]] void usage_and_exit(const char* self) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol bb|weak-ba|strong-ba|fallback|ds-bb]\n"
      "          [--t T] [--n N] [--f F]\n"
      "          [--adversary NAME]  (names: see below)\n"
      "          [--value V] [--sender S] [--seed SEED]\n"
      "          [--backend sim|shamir] [--by-kind] [--by-round]\n",
      self);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage_and_exit(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--protocol")) {
      o.protocol = need("--protocol");
    } else if (!std::strcmp(argv[i], "--t")) {
      o.t = static_cast<std::uint32_t>(std::atoi(need("--t")));
    } else if (!std::strcmp(argv[i], "--n")) {
      o.n = static_cast<std::uint32_t>(std::atoi(need("--n")));
    } else if (!std::strcmp(argv[i], "--f")) {
      o.f = static_cast<std::uint32_t>(std::atoi(need("--f")));
    } else if (!std::strcmp(argv[i], "--adversary")) {
      o.adversary = need("--adversary");
    } else if (!std::strcmp(argv[i], "--value")) {
      o.value = std::strtoull(need("--value"), nullptr, 0);
    } else if (!std::strcmp(argv[i], "--sender")) {
      o.sender = static_cast<ProcessId>(std::atoi(need("--sender")));
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = std::strtoull(need("--seed"), nullptr, 0);
    } else if (!std::strcmp(argv[i], "--backend")) {
      o.backend = need("--backend");
    } else if (!std::strcmp(argv[i], "--by-kind")) {
      o.by_kind = true;
    } else if (!std::strcmp(argv[i], "--by-round")) {
      o.by_round = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit(argv[0]);
    }
  }
  return o;
}

std::unique_ptr<Adversary> make_adversary(const Options& o,
                                          const harness::RunSpec& spec,
                                          check::Protocol protocol) {
  check::AdversaryParams params;
  params.protocol = protocol;
  params.n = spec.n;
  params.t = spec.t;
  params.f = o.f;
  params.instance = spec.instance;
  params.seed = o.seed;
  params.value = o.value;
  params.sender = o.sender;
  auto adversary = check::make_adversary(o.adversary, params);
  if (adversary == nullptr) {
    std::fprintf(stderr, "unknown adversary: %s (expected %s)\n",
                 o.adversary.c_str(),
                 check::adversary_names_joined().c_str());
    std::exit(2);
  }
  return adversary;
}

void print_meter(const Options& o, const Meter& meter, Round rounds) {
  std::printf("words (correct senders):    %llu\n",
              static_cast<unsigned long long>(meter.words_correct));
  std::printf("messages (correct senders): %llu\n",
              static_cast<unsigned long long>(meter.messages_correct));
  std::printf("logical signatures moved:   %llu\n",
              static_cast<unsigned long long>(meter.logical_sigs_correct));
  std::printf("byzantine words (excluded): %llu\n",
              static_cast<unsigned long long>(meter.words_byzantine));
  std::printf("rounds:                     %u\n", rounds);
  if (o.by_kind) {
    std::printf("\nwords by message kind:\n");
    for (const auto& [kind, words] : meter.words_by_kind()) {
      std::printf("  %-18s %llu\n", kind.c_str(),
                  static_cast<unsigned long long>(words));
    }
  }
  if (o.by_round) {
    std::printf("\nwords by round (non-zero only):\n");
    for (Round r = 0; r < meter.words_by_round.size(); ++r) {
      if (meter.words_by_round[r] == 0) continue;
      std::printf("  round %-4u %llu\n", r,
                  static_cast<unsigned long long>(meter.words_by_round[r]));
    }
  }
}

int run(const Options& o) {
  harness::RunSpec spec =
      o.n == 0 ? harness::RunSpec::for_t(o.t)
               : harness::RunSpec::with(o.n, o.t);
  spec.seed = o.seed;
  if (o.backend == "shamir") spec.backend = ThresholdBackend::kShamir;

  std::printf("protocol=%s n=%u t=%u adversary=%s f=%u seed=%llu\n\n",
              o.protocol.c_str(), spec.n, spec.t, o.adversary.c_str(), o.f,
              static_cast<unsigned long long>(o.seed));

  if (o.protocol == "bb") {
    auto adversary = make_adversary(o, spec, check::Protocol::kBb);
    const auto res = harness::run_bb(spec, o.sender, Value(o.value),
                                     *adversary);
    std::printf("agreement: %s\n", res.agreement() ? "yes" : "NO");
    std::printf("decision:  %s\n",
                res.decision().is_bottom()
                    ? "⊥"
                    : std::to_string(res.decision().raw).c_str());
    std::printf("fallback:  %s\nnon-silent vetting leaders: %u\n\n",
                res.any_fallback() ? "yes" : "no", res.nonsilent_leaders());
    print_meter(o, res.meter, res.rounds);
    return res.agreement() ? 0 : 1;
  }
  if (o.protocol == "weak-ba") {
    auto adversary = make_adversary(o, spec, check::Protocol::kWeakBa);
    const auto res = harness::run_weak_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(o.value))),
        harness::always_valid_factory(), *adversary);
    std::printf("agreement: %s\n", res.agreement() ? "yes" : "NO");
    std::printf("decision:  %s\n",
                res.decision().is_bottom()
                    ? "⊥"
                    : std::to_string(res.decision().value.raw).c_str());
    std::printf("fallback:  %s\nhelp requests: %u\n\n",
                res.any_fallback() ? "yes" : "no", res.help_reqs_sent());
    print_meter(o, res.meter, res.rounds);
    return res.agreement() ? 0 : 1;
  }
  if (o.protocol == "strong-ba") {
    auto adversary = make_adversary(o, spec, check::Protocol::kStrongBa);
    const auto res = harness::run_strong_ba(
        spec, std::vector<Value>(spec.n, Value(o.value > 1 ? 1 : o.value)),
        *adversary);
    std::printf("agreement: %s\ndecision:  %llu\nall fast:  %s\n\n",
                res.agreement() ? "yes" : "NO",
                static_cast<unsigned long long>(res.decision().raw),
                res.all_fast() ? "yes" : "no");
    print_meter(o, res.meter, res.rounds);
    return res.agreement() ? 0 : 1;
  }
  if (o.protocol == "fallback") {
    auto adversary = make_adversary(o, spec, check::Protocol::kFallback);
    const auto res = harness::run_fallback_ba(
        spec, std::vector<WireValue>(spec.n, WireValue::plain(Value(o.value))),
        *adversary);
    std::printf("agreement: %s\ndecision:  %llu\n\n",
                res.agreement() ? "yes" : "NO",
                static_cast<unsigned long long>(res.decision().value.raw));
    print_meter(o, res.meter, res.rounds);
    return res.agreement() ? 0 : 1;
  }
  if (o.protocol == "ds-bb") {
    auto adversary = make_adversary(o, spec, check::Protocol::kDsBb);
    const auto res =
        harness::run_ds_bb(spec, o.sender, Value(o.value), *adversary);
    std::printf("agreement: %s\ndecision:  %s\n\n",
                res.agreement() ? "yes" : "NO",
                res.decision().is_bottom()
                    ? "⊥"
                    : std::to_string(res.decision().raw).c_str());
    print_meter(o, res.meter, res.rounds);
    return res.agreement() ? 0 : 1;
  }
  std::fprintf(stderr, "unknown protocol: %s\n", o.protocol.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) { return run(parse(argc, argv)); }
