// mewc_node — one consensus replica of a real deployed cluster.
//
// Runs the SMR ledger's BB-per-slot / strong-BA-per-checkpoint schedule
// over net::TcpTransport: n of these processes (one per --id) form a
// cluster on localhost or across hosts, close rounds via mark watermarks
// with a timeout fallback (net::TimeoutRoundSync), accept client commands
// on a separate framed-TCP port (node::ClientServer, fed by mewc_loadgen),
// and optionally persist a WAL + snapshots via --wal-dir.
//
// Port convention: node j's consensus port is --base-port + j and its
// client port is --base-port + n + j, so a whole local cluster needs only
// one flag. --client-port overrides the latter for multi-host layouts.
//
// The node prints one summary block at exit; "kv digest:" and
// "ledger digest:" lines are the cross-node agreement audit — every node
// of a converged cluster prints identical digests
// (tests/node/node_smoke.sh greps exactly these).
//
// Usage:
//   mewc_node --id I [--n N] [--t T] [--base-port P] [--host H]
//             [--client-port P] [--slots S] [--checkpoint-every C]
//             [--round-timeout-ms MS] [--connect-timeout-ms MS]
//             [--seed SEED] [--backend sim|shamir|real]
//             [--wal-dir DIR] [--recover]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "argparse.hpp"
#include "common/hash.hpp"
#include "net/tcp.hpp"
#include "node/client.hpp"
#include "node/replica.hpp"
#include "smr/recovery.hpp"

namespace {

using namespace mewc;
using tools::parse_u32;
using tools::parse_u64;

struct Options {
  std::uint32_t id = 0;
  bool id_set = false;
  std::uint32_t n = 4;
  std::uint32_t t = 1;
  std::uint32_t base_port = 19000;
  std::string host = "127.0.0.1";
  std::uint32_t client_port = 0;  // 0: derive base_port + n + id
  std::uint64_t slots = 16;
  std::uint32_t checkpoint_every = 0;
  std::uint64_t round_timeout_ms = 1000;
  std::uint64_t connect_timeout_ms = 15000;
  std::uint64_t seed = 0x5e7;
  std::string backend = "sim";
  std::string wal_dir;
  bool recover = false;
};

// The tool name is literal (not argv[0]) so the --help output is stable
// under any invocation path — tests/tools/mewc_node_help.txt pins it.
void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: mewc_node --id I [--n N] [--t T] [--base-port P] [--host H]\n"
      "          [--client-port P] [--slots S] [--checkpoint-every C]\n"
      "          [--round-timeout-ms MS] [--connect-timeout-ms MS]\n"
      "          [--seed SEED] [--backend sim|shamir|real]\n"
      "          [--wal-dir DIR] [--recover]\n"
      "\n"
      "One replica of an n-node BFT SMR cluster over TCP. Node j listens\n"
      "on base-port+j for peers and base-port+n+j for clients; all n nodes\n"
      "must share --n/--t/--seed/--backend (the handshake token refuses\n"
      "mismatched peers). Prints `kv digest:`/`ledger digest:` lines at\n"
      "exit for cross-node convergence audits.\n");
}

[[noreturn]] void usage_and_exit() {
  print_usage(stderr);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        usage_and_exit();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--help")) {
      print_usage(stdout);
      std::exit(0);
    } else if (!std::strcmp(argv[i], "--id")) {
      o.id = parse_u32("--id", need());
      o.id_set = true;
    } else if (!std::strcmp(argv[i], "--n")) {
      o.n = parse_u32("--n", need());
    } else if (!std::strcmp(argv[i], "--t")) {
      o.t = parse_u32("--t", need());
    } else if (!std::strcmp(argv[i], "--base-port")) {
      o.base_port = parse_u32("--base-port", need(), 65535);
    } else if (!std::strcmp(argv[i], "--host")) {
      o.host = need();
    } else if (!std::strcmp(argv[i], "--client-port")) {
      o.client_port = parse_u32("--client-port", need(), 65535);
    } else if (!std::strcmp(argv[i], "--slots")) {
      o.slots = parse_u64("--slots", need());
    } else if (!std::strcmp(argv[i], "--checkpoint-every")) {
      o.checkpoint_every = parse_u32("--checkpoint-every", need());
    } else if (!std::strcmp(argv[i], "--round-timeout-ms")) {
      o.round_timeout_ms = parse_u64("--round-timeout-ms", need());
    } else if (!std::strcmp(argv[i], "--connect-timeout-ms")) {
      o.connect_timeout_ms = parse_u64("--connect-timeout-ms", need());
    } else if (!std::strcmp(argv[i], "--seed")) {
      o.seed = parse_u64("--seed", need());
    } else if (!std::strcmp(argv[i], "--backend")) {
      o.backend = need();
    } else if (!std::strcmp(argv[i], "--wal-dir")) {
      o.wal_dir = need();
    } else if (!std::strcmp(argv[i], "--recover")) {
      o.recover = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage_and_exit();
    }
  }
  if (!o.id_set) {
    std::fprintf(stderr, "--id is required\n");
    usage_and_exit();
  }
  return o;
}

/// Shared-configuration handshake token: any node whose (seed, n, t,
/// backend) differs computes a different token and is refused at connect
/// time instead of diverging silently mid-consensus.
std::uint64_t cluster_token(const Options& o, ThresholdBackend backend) {
  std::uint64_t h = hash_combine(0x6d65776e6f646575ull, o.seed);  // "mewnode"
  h = hash_combine(h, o.n);
  h = hash_combine(h, o.t);
  h = hash_combine(h, static_cast<std::uint64_t>(backend));
  return h;
}

int run(const Options& o) {
  const auto backend = parse_backend(o.backend);
  if (!backend) {
    std::fprintf(stderr, "unknown backend: %s (expected sim|shamir|real)\n",
                 o.backend.c_str());
    return 2;
  }
  if (o.t == 0 || o.n < 2 * o.t + 1) {
    std::fprintf(stderr, "need t >= 1 and n >= 2t+1\n");
    return 2;
  }
  if (o.id >= o.n) {
    std::fprintf(stderr, "--id must be < --n\n");
    return 2;
  }
  if (o.base_port + o.n + o.n > 65536) {
    std::fprintf(stderr, "--base-port leaves no room for %u node+client "
                         "ports\n", 2 * o.n);
    return 2;
  }

  // Node-to-node transport: node j listens on base+j, dials every peer.
  net::TcpTransportConfig tc;
  tc.self = o.id;
  tc.n = o.n;
  tc.listen_port = static_cast<std::uint16_t>(o.base_port + o.id);
  for (std::uint32_t j = 0; j < o.n; ++j) {
    tc.peers.push_back({j, o.host, static_cast<std::uint16_t>(o.base_port + j)});
  }
  tc.cluster_token = cluster_token(o, *backend);
  net::TcpTransport transport(tc);
  std::string error;
  if (!transport.start(&error)) {
    std::fprintf(stderr, "node %u: transport: %s\n", o.id, error.c_str());
    return 1;
  }

  const std::uint16_t client_port = static_cast<std::uint16_t>(
      o.client_port != 0 ? o.client_port : o.base_port + o.n + o.id);
  node::ClientServer clients(client_port);
  if (!clients.start(&error)) {
    std::fprintf(stderr, "node %u: client lane: %s\n", o.id, error.c_str());
    return 1;
  }

  // Durable state: load (or create) the store before consensus starts so a
  // recovering cluster completes its pending checkpoint together.
  smr::Store store;
  if (!o.wal_dir.empty() && o.recover) {
    auto loaded = smr::load_store(o.wal_dir);
    if (!loaded) {
      std::fprintf(stderr, "node %u: cannot read --wal-dir %s\n", o.id,
                   o.wal_dir.c_str());
      return 1;
    }
    store = std::move(*loaded);
  }
  smr::Durability durability(&store);

  net::TimeoutRoundSync sync(transport.watermarks(), o.id,
                             std::chrono::milliseconds(o.round_timeout_ms));
  node::ReplicaConfig rc;
  rc.id = o.id;
  rc.n = o.n;
  rc.t = o.t;
  rc.backend = *backend;
  rc.seed = o.seed;
  rc.checkpoint_every = o.checkpoint_every;
  rc.transport = &transport;
  rc.sync = &sync;
  rc.durability = o.wal_dir.empty() ? nullptr : &durability;
  node::Replica replica(rc);

  std::printf("node %u: listening node=%u client=%u (n=%u t=%u backend=%s "
              "seed=0x%llx)\n",
              o.id, transport.listen_port(), clients.listen_port(), o.n, o.t,
              backend_name(*backend),
              static_cast<unsigned long long>(o.seed));
  std::fflush(stdout);

  if (!transport.wait_connected(
          std::chrono::milliseconds(o.connect_timeout_ms))) {
    std::fprintf(stderr, "node %u: cluster never connected (%llu ms)\n", o.id,
                 static_cast<unsigned long long>(o.connect_timeout_ms));
    return 1;
  }

  // Recovery happens after the cluster is up: completing a pending
  // checkpoint runs a strong-BA instance across all nodes, so every node
  // must already be reachable (whole-cluster restart is the model).
  if (o.recover && !o.wal_dir.empty()) {
    smr::Ledger::Config lc;
    lc.n = o.n;
    lc.t = o.t;
    lc.backend = *backend;
    lc.seed = o.seed;
    lc.checkpoint_every = o.checkpoint_every;
    smr::Recovered rec = smr::recover(lc, store);
    durability.reset_kv(rec.kv);
    std::printf("node %u: recovered %llu slots (snapshot=%d replayed=%llu "
                "pending-checkpoint=%d)\n",
                o.id,
                static_cast<unsigned long long>(rec.state.slots.size()),
                rec.stats.used_snapshot ? 1 : 0,
                static_cast<unsigned long long>(rec.stats.records_replayed),
                rec.stats.checkpoint_pending ? 1 : 0);
    std::fflush(stdout);
    replica.install(std::move(rec.state), std::move(rec.kv));
  }
  std::printf("node %u: cluster up, running %llu slots\n", o.id,
              static_cast<unsigned long long>(o.slots));
  std::fflush(stdout);

  const auto started = std::chrono::steady_clock::now();
  std::uint64_t acked_ok = 0;
  std::uint64_t acked_retry = 0;
  const std::uint64_t first_slot = replica.next_slot();
  while (replica.next_slot() < first_slot + o.slots) {
    // A client op rides a slot only when this node is its proposer; the BB
    // sender is the only process whose input matters, so popping anywhere
    // else would silently drop the op.
    node::ClientOp op;
    const bool have_op = replica.proposes_next() && clients.pop(op);
    const Value proposal =
        have_op ? Value(op.word) : smr::Command{}.pack();  // noop filler
    const smr::SlotRecord& rec = replica.run_slot(proposal);
    if (have_op) {
      const bool landed = !rec.skipped && rec.value.raw == op.word;
      clients.ack(op, rec.slot, replica.kv().digest(), landed ? 0 : 1);
      ++(landed ? acked_ok : acked_retry);
    }
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);

  if (!o.wal_dir.empty() && !smr::save_store(o.wal_dir, store)) {
    std::fprintf(stderr, "node %u: cannot persist --wal-dir %s\n", o.id,
                 o.wal_dir.c_str());
    return 1;
  }

  const node::ReplicaStats& rs = replica.stats();
  const net::TcpTransportStats ts = transport.stats();
  const node::ClientServerStats cs = clients.stats();
  std::printf("node %u: slots=%llu committed=%llu skipped=%llu "
              "checkpoints=%llu fallbacks=%llu in %lld ms\n",
              o.id, static_cast<unsigned long long>(rs.slots_run),
              static_cast<unsigned long long>(rs.committed),
              static_cast<unsigned long long>(rs.skipped),
              static_cast<unsigned long long>(rs.checkpoint_runs),
              static_cast<unsigned long long>(rs.fallbacks),
              static_cast<long long>(elapsed.count()));
  std::printf("node %u: client ops=%llu acked_ok=%llu acked_retry=%llu\n",
              o.id, static_cast<unsigned long long>(cs.ops_received),
              static_cast<unsigned long long>(acked_ok),
              static_cast<unsigned long long>(acked_retry));
  std::printf("node %u: round timeouts=%llu late_drops=%llu "
              "foreign_drops=%llu\n",
              o.id, static_cast<unsigned long long>(sync.timeouts()),
              static_cast<unsigned long long>(rs.late_drops),
              static_cast<unsigned long long>(rs.foreign_drops));
  std::printf("node %u: transport sent=%llu received=%llu reconnects=%llu "
              "decode_drops=%llu\n",
              o.id, static_cast<unsigned long long>(ts.envelopes_sent),
              static_cast<unsigned long long>(ts.envelopes_received),
              static_cast<unsigned long long>(ts.reconnects),
              static_cast<unsigned long long>(ts.decode_drops));
  std::printf("node %u: ledger digest: 0x%016llx\n", o.id,
              static_cast<unsigned long long>(replica.ledger().ledger_digest()));
  std::printf("node %u: kv digest: 0x%016llx\n", o.id,
              static_cast<unsigned long long>(replica.kv().digest()));

  // Linger so slower peers can still close their final rounds against our
  // marks before the sockets vanish (they are already in-flight; this just
  // keeps the process from racing its own kernel buffers on exit).
  clients.shutdown();
  transport.shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(parse(argc, argv)); }
